package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hornet/internal/fsatomic"
	"hornet/internal/lru"
	"hornet/internal/snapshot"
)

// SnapshotCache is the warmup-once/fork-many engine: a single-flight,
// content-addressed cache of opaque snapshot blobs. Sweep items whose
// configurations share a warmup prefix (same config modulo
// measured-phase knobs, same seed) key their warmup by the prefix hash;
// the first run to ask executes the warmup and snapshots the simulator,
// every other run — concurrent or later — restores from the cached blob
// instead of re-simulating the prefix.
//
// Two tiers: blobs always live in memory for the process lifetime; with
// Dir configured they also persist as warmup-<key>.snap files (next to
// the name-hash.json result documents), so a later process skips the
// warmup too. Disk entries are verified by the snapshot container's own
// checksum when restored, so a truncated file degrades to a re-run, not
// a corrupt simulation.
type SnapshotCache struct {
	dir string

	mu       sync.Mutex
	mem      *lru.Cache
	inflight map[string]chan struct{}

	hits     atomic.Uint64
	misses   atomic.Uint64
	writeErr atomic.Uint64
}

// NewSnapshotCache creates a cache; dir may be empty for memory-only.
func NewSnapshotCache(dir string) *SnapshotCache {
	return &SnapshotCache{
		dir:      dir,
		mem:      lru.New(),
		inflight: map[string]chan struct{}{},
	}
}

// SetMaxEntries bounds the in-memory blob count with LRU eviction
// (0 = unbounded). Warmup snapshots are full-system states — far larger
// than result documents — so long-lived daemons should set a bound;
// with a disk tier configured, evicted entries refault on demand.
func (c *SnapshotCache) SetMaxEntries(n int) {
	c.mu.Lock()
	c.mem.SetBounds(n, 0)
	c.mu.Unlock()
}

// Path returns the disk file backing a key ("" without a disk tier).
func (c *SnapshotCache) Path(key string) string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, "warmup-"+key+".snap")
}

// Get returns the blob for key, producing it at most once per process:
// the first caller runs produce while concurrent callers for the same
// key block until it finishes (single-flight). hit reports whether the
// blob came from the cache (memory or disk) rather than this call's own
// produce. A failed produce is not cached; the error is returned to the
// caller that ran it, and waiting callers retry (typically finding the
// next producer's result, or failing the same way).
func (c *SnapshotCache) Get(ctx context.Context, key string, produce func() ([]byte, error)) (blob []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if b, ok := c.mem.Get(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return b, true, nil
		}
		c.mu.Unlock()
		if c.dir != "" {
			// Disk refault, outside the mutex (snapshots are large; a
			// slow read must not stall concurrent memory hits). An entry
			// is only served if it decodes as a valid snapshot container
			// (checksum, version): a truncated, corrupted or
			// format-skewed file degrades to a re-run instead of
			// poisoning every run in the group.
			if b, err := os.ReadFile(c.Path(key)); err == nil {
				if _, derr := snapshot.DecodeBytes(b); derr == nil {
					c.mu.Lock()
					c.mem.Put(key, b)
					c.mu.Unlock()
					c.hits.Add(1)
					return b, true, nil
				}
				os.Remove(c.Path(key)) // unusable: clear it for the re-run
			}
		}
		c.mu.Lock()
		if _, ok := c.mem.Get(key); ok {
			// A concurrent producer landed between our checks; loop to
			// serve it through the normal hit path.
			c.mu.Unlock()
			continue
		}
		if ch, busy := c.inflight[key]; busy {
			c.mu.Unlock()
			select {
			case <-ch:
				continue // producer finished; re-check the cache
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		c.misses.Add(1)
		blob, err = produce()

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.mem.Put(key, blob)
		}
		close(ch)
		c.mu.Unlock()
		if err != nil {
			return nil, false, err
		}
		if c.dir != "" {
			if werr := c.persist(key, blob); werr != nil {
				// Disk persistence is an optimization; losing it only
				// costs a future process one warmup. Count it so callers
				// can surface the degradation.
				c.writeErr.Add(1)
			}
		}
		return blob, false, nil
	}
}

// persist writes a blob atomically (temp + rename).
func (c *SnapshotCache) persist(key string, b []byte) error {
	return fsatomic.WriteFile(c.Path(key), b)
}

// Drop purges a key from memory and disk. Callers use it when a cached
// blob turns out to be unusable downstream (e.g. a restore rejected it)
// so the next Get re-produces instead of re-serving the bad bytes.
func (c *SnapshotCache) Drop(key string) {
	c.mu.Lock()
	c.mem.Delete(key)
	c.mu.Unlock()
	if c.dir != "" {
		os.Remove(c.Path(key))
	}
}

// Len reports the number of blobs resident in memory.
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mem.Len()
}

// Hits, Misses and WriteErrs report cache counters: Hits counts
// restores served from the cache, Misses counts warmups actually
// simulated, WriteErrs counts failed disk persists.
func (c *SnapshotCache) Hits() uint64      { return c.hits.Load() }
func (c *SnapshotCache) Misses() uint64    { return c.misses.Load() }
func (c *SnapshotCache) WriteErrs() uint64 { return c.writeErr.Load() }

// String summarizes the cache for logs.
func (c *SnapshotCache) String() string {
	return fmt.Sprintf("warmup-cache{entries=%d hits=%d misses=%d}", c.Len(), c.Hits(), c.Misses())
}

package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"hornet/internal/snapshot"
)

func TestSnapshotCacheSingleFlight(t *testing.T) {
	c := NewSnapshotCache("")
	var produced atomic.Int64
	release := make(chan struct{})
	const callers = 8

	var wg sync.WaitGroup
	results := make([][]byte, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, hit, err := c.Get(context.Background(), "k", func() ([]byte, error) {
				produced.Add(1)
				<-release // hold every concurrent caller at the door
				return []byte("blob"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], hits[i] = b, hit
		}(i)
	}
	close(release)
	wg.Wait()

	if got := produced.Load(); got != 1 {
		t.Errorf("produce ran %d times, want 1 (single-flight)", got)
	}
	nhits := 0
	for i, b := range results {
		if string(b) != "blob" {
			t.Errorf("caller %d got %q", i, b)
		}
		if hits[i] {
			nhits++
		}
	}
	if nhits != callers-1 {
		t.Errorf("%d callers reported a hit, want %d", nhits, callers-1)
	}
	if c.Misses() != 1 || c.Hits() != uint64(callers-1) {
		t.Errorf("counters hits=%d misses=%d, want %d/1", c.Hits(), c.Misses(), callers-1)
	}
}

// containerBlob builds valid snapshot-container bytes (the disk tier
// verifies entries decode before serving them).
func containerBlob(t *testing.T, payload string) []byte {
	t.Helper()
	s := snapshot.New("feedfeedfeedfeed", 1)
	s.Section("data").String(payload)
	b, err := s.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSnapshotCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	blob := containerBlob(t, "warm state")
	c1 := NewSnapshotCache(dir)
	b, hit, err := c1.Get(context.Background(), "abc123", func() ([]byte, error) {
		return blob, nil
	})
	if err != nil || hit || !bytes.Equal(b, blob) {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "warmup-abc123.snap")); err != nil {
		t.Fatalf("disk entry missing: %v", err)
	}

	// A new cache (a new process) must hit disk without producing.
	c2 := NewSnapshotCache(dir)
	b, hit, err = c2.Get(context.Background(), "abc123", func() ([]byte, error) {
		t.Error("produce ran despite a disk entry")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(b, blob) {
		t.Fatalf("disk get: hit=%v err=%v", hit, err)
	}
}

// A corrupt disk entry degrades to a re-run (and is cleared), never a
// served blob.
func TestSnapshotCacheCorruptDiskEntryDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warmup-k.snap")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewSnapshotCache(dir)
	blob := containerBlob(t, "fresh")
	b, hit, err := c.Get(context.Background(), "k", func() ([]byte, error) { return blob, nil })
	if err != nil || hit || !bytes.Equal(b, blob) {
		t.Fatalf("corrupt entry: hit=%v err=%v", hit, err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, blob) {
		t.Error("corrupt disk entry was not replaced by the re-produced blob")
	}
}

// Drop purges a key so the next Get re-produces.
func TestSnapshotCacheDrop(t *testing.T) {
	dir := t.TempDir()
	c := NewSnapshotCache(dir)
	c.Get(context.Background(), "k", func() ([]byte, error) { return containerBlob(t, "v1"), nil })
	c.Drop("k")
	if _, err := os.Stat(c.Path("k")); !os.IsNotExist(err) {
		t.Error("Drop left the disk entry")
	}
	_, hit, _ := c.Get(context.Background(), "k", func() ([]byte, error) { return containerBlob(t, "v2"), nil })
	if hit {
		t.Error("dropped key still served from cache")
	}
}

// SetMaxEntries LRU-bounds the memory tier; evicted entries refault
// from disk.
func TestSnapshotCacheMaxEntries(t *testing.T) {
	dir := t.TempDir()
	c := NewSnapshotCache(dir)
	c.SetMaxEntries(2)
	for _, k := range []string{"a", "b", "c"} {
		k := k
		c.Get(context.Background(), k, func() ([]byte, error) { return containerBlob(t, k), nil })
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	// "a" was evicted from memory but refaults from disk without producing.
	_, hit, err := c.Get(context.Background(), "a", func() ([]byte, error) {
		t.Error("produce ran for an entry present on disk")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("refault: hit=%v err=%v", hit, err)
	}
}

func TestSnapshotCacheProduceError(t *testing.T) {
	c := NewSnapshotCache("")
	boom := errors.New("boom")
	_, _, err := c.Get(context.Background(), "k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want produce error", err)
	}
	// Failure is not cached: the next caller produces again and can succeed.
	b, hit, err := c.Get(context.Background(), "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(b) != "ok" {
		t.Fatalf("retry after failure: b=%q hit=%v err=%v", b, hit, err)
	}
}

func TestSnapshotCacheWaiterCancellation(t *testing.T) {
	c := NewSnapshotCache("")
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Get(context.Background(), "k", func() ([]byte, error) {
		close(started)
		<-release
		return []byte("late"), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Get(ctx, "k", func() ([]byte, error) {
		return nil, fmt.Errorf("waiter must not produce")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	close(release)
}

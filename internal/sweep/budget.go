package sweep

import "sync"

// Budget is a counting semaphore over host CPU slots, shared by every run
// of a sweep. A run that will start W engine workers acquires W slots up
// front and holds them for its duration, so the total number of busy
// simulation threads — across all concurrently executing configurations —
// never exceeds the budget. This is what lets a sweep safely mix
// single-threaded runs with runs that are themselves parallel.
type Budget struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

// NewBudget returns a budget of n slots. n < 1 is treated as 1.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	b := &Budget{cap: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Cap returns the total slot count.
func (b *Budget) Cap() int { return b.cap }

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Acquire blocks until w slots are free and takes them, returning the
// number actually granted: requests are clamped to [1, Cap], so a run
// asking for more workers than the host has budget for is granted the
// whole budget rather than deadlocking.
func (b *Budget) Acquire(w int) int {
	if w < 1 {
		w = 1
	}
	if w > b.cap {
		w = b.cap
	}
	b.mu.Lock()
	for b.used+w > b.cap {
		b.cond.Wait()
	}
	b.used += w
	b.mu.Unlock()
	return w
}

// Release returns w previously acquired slots to the pool.
func (b *Budget) Release(w int) {
	if w < 1 {
		return
	}
	b.mu.Lock()
	if w > b.used {
		panic("sweep: Budget.Release of more slots than acquired")
	}
	b.used -= w
	b.mu.Unlock()
	b.cond.Broadcast()
}

package sweep

import (
	"context"
	"sync"
)

// Budget is a counting semaphore over host CPU slots, shared by every run
// of a sweep — or, via Config.Pool, by every run of several concurrent
// sweeps. A run that will start W engine workers acquires W slots up
// front and holds them for its duration, so the total number of busy
// simulation threads — across all concurrently executing configurations —
// never exceeds the budget. This is what lets a sweep safely mix
// single-threaded runs with runs that are themselves parallel, and what
// lets a serving daemon run many jobs without oversubscribing the host.
type Budget struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
	peak int
}

// NewBudget returns a budget of n slots. n < 1 is treated as 1.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	b := &Budget{cap: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Cap returns the total slot count.
func (b *Budget) Cap() int { return b.cap }

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of concurrently held slots since the
// budget was created. By construction it never exceeds Cap; tests and
// monitoring use it to show the cap actually bound the workload.
func (b *Budget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Acquire blocks until w slots are free and takes them, returning the
// number actually granted: requests are clamped to [1, Cap], so a run
// asking for more workers than the host has budget for is granted the
// whole budget rather than deadlocking.
func (b *Budget) Acquire(w int) int {
	granted, _ := b.AcquireCtx(context.Background(), w)
	return granted
}

// AcquireCtx is Acquire with cancellation: a caller blocked waiting for
// slots gives up when ctx is cancelled, returning 0 and ctx.Err(). Slots
// already free are granted even if ctx is already cancelled-concurrently;
// the caller that receives slots must Release them.
func (b *Budget) AcquireCtx(ctx context.Context, w int) (int, error) {
	if w < 1 {
		w = 1
	}
	if w > b.cap {
		w = b.cap
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.Lock()
	if b.used+w > b.cap {
		// Slow path: wait on the condition variable, waking on every
		// Release and on context cancellation. The AfterFunc takes the
		// lock before broadcasting so a waiter cannot check ctx.Err(),
		// release the lock inside Wait, and miss the wakeup.
		stop := context.AfterFunc(ctx, func() {
			b.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast after Wait's unlock
			b.mu.Unlock()
			b.cond.Broadcast()
		})
		defer stop()
		for b.used+w > b.cap {
			if err := ctx.Err(); err != nil {
				b.mu.Unlock()
				return 0, err
			}
			b.cond.Wait()
		}
	}
	b.used += w
	if b.used > b.peak {
		b.peak = b.used
	}
	b.mu.Unlock()
	return w, nil
}

// Release returns w previously acquired slots to the pool.
func (b *Budget) Release(w int) {
	if w < 1 {
		return
	}
	b.mu.Lock()
	if w > b.used {
		panic("sweep: Budget.Release of more slots than acquired")
	}
	b.used -= w
	b.mu.Unlock()
	b.cond.Broadcast()
}

package sweep

import (
	"context"
	"sync"
)

// Budget is a counting semaphore over host CPU slots, shared by every run
// of a sweep — or, via Config.Pool, by every run of several concurrent
// sweeps. A run that will start W engine workers acquires W slots up
// front and holds them for its duration, so the total number of busy
// simulation threads — across all concurrently executing configurations —
// never exceeds the budget. This is what lets a sweep safely mix
// single-threaded runs with runs that are themselves parallel, and what
// lets a serving daemon run many jobs without oversubscribing the host.
type Budget struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
	peak int
}

// NewBudget returns a budget of n slots. n < 1 is treated as 1.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	b := &Budget{cap: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Cap returns the total slot count.
func (b *Budget) Cap() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of concurrently held slots since the
// budget was created. Acquisitions never push the in-use count past the
// capacity, so on a fixed-size budget Peak never exceeds Cap — tests
// and monitoring use it to show the cap actually bound the workload.
// On a resizable budget (the fleet's), Peak can legitimately exceed the
// CURRENT Cap after a shrink: holders keep their slots (Resize never
// revokes), so compare Peak against the capacity in effect at the time,
// not against Cap() now.
func (b *Budget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Acquire blocks until w slots are free and takes them, returning the
// number actually granted: requests are clamped to [1, Cap], so a run
// asking for more workers than the host has budget for is granted the
// whole budget rather than deadlocking.
func (b *Budget) Acquire(w int) int {
	granted, _ := b.AcquireCtx(context.Background(), w)
	return granted
}

// AcquireCtx is Acquire with cancellation: a caller blocked waiting for
// slots gives up when ctx is cancelled, returning 0 and ctx.Err(). Slots
// already free are granted even if ctx is already cancelled-concurrently;
// the caller that receives slots must Release them.
func (b *Budget) AcquireCtx(ctx context.Context, w int) (int, error) {
	if w < 1 {
		w = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.Lock()
	// Clamp under the lock, and re-clamp on every wakeup: Resize can
	// shrink the capacity while a request waits, and a request wider
	// than the (new) whole budget must be granted the whole budget
	// rather than waiting forever.
	if w > b.cap {
		w = b.cap
	}
	if w < 1 {
		w = 1
	}
	if b.used+w > b.cap {
		// Slow path: wait on the condition variable, waking on every
		// Release and on context cancellation. The AfterFunc takes the
		// lock before broadcasting so a waiter cannot check ctx.Err(),
		// release the lock inside Wait, and miss the wakeup.
		stop := context.AfterFunc(ctx, func() {
			b.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast after Wait's unlock
			b.mu.Unlock()
			b.cond.Broadcast()
		})
		defer stop()
		for b.used+w > b.cap {
			if err := ctx.Err(); err != nil {
				b.mu.Unlock()
				return 0, err
			}
			b.cond.Wait()
			if w > b.cap {
				w = b.cap
			}
			if w < 1 {
				w = 1
			}
		}
	}
	b.used += w
	if b.used > b.peak {
		b.peak = b.used
	}
	b.mu.Unlock()
	return w, nil
}

// Release returns w previously acquired slots to the pool.
func (b *Budget) Release(w int) {
	if w < 1 {
		return
	}
	b.mu.Lock()
	if w > b.used {
		panic("sweep: Budget.Release of more slots than acquired")
	}
	b.used -= w
	b.mu.Unlock()
	b.cond.Broadcast()
}

// TryAcquire takes w slots (clamped to [1, Cap]) only if they are free
// right now, reporting how many were granted and whether the acquisition
// happened. It never blocks, which makes it safe to call under a
// caller's own lock — the fleet scheduler leases slots this way while
// holding its placement mutex.
func (b *Budget) TryAcquire(w int) (int, bool) {
	if w < 1 {
		w = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if w > b.cap {
		w = b.cap
	}
	if w < 1 || b.used+w > b.cap {
		return 0, false
	}
	b.used += w
	if b.used > b.peak {
		b.peak = b.used
	}
	return w, true
}

// Resize adjusts the budget's capacity to n (clamped to >= 0). Growing
// wakes blocked acquirers; shrinking below the in-use count is allowed —
// holders keep their slots and new acquisitions wait until enough are
// released. A fleet budget resizes as workers join and leave.
func (b *Budget) Resize(n int) {
	if n < 0 {
		n = 0
	}
	b.mu.Lock()
	b.cap = n
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Lease is a releasable hold of slots on a Budget. Unlike a bare
// Acquire/Release pair, a Lease may be released exactly once from any
// goroutine — requeue paths and completion paths can race to return the
// slots without double-releasing.
type Lease struct {
	b     *Budget
	slots int
	once  sync.Once
}

// TryLease is TryAcquire returning a release-once handle; nil when the
// slots are not free.
func (b *Budget) TryLease(w int) *Lease {
	granted, ok := b.TryAcquire(w)
	if !ok {
		return nil
	}
	return &Lease{b: b, slots: granted}
}

// Slots reports how many slots the lease holds. Safe on a nil lease (0).
func (l *Lease) Slots() int {
	if l == nil {
		return 0
	}
	return l.slots
}

// Release returns the leased slots; idempotent and nil-safe.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.once.Do(func() { l.b.Release(l.slots) })
}

package sweep

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBudgetTryAcquire(t *testing.T) {
	b := NewBudget(3)
	if got, ok := b.TryAcquire(2); !ok || got != 2 {
		t.Fatalf("TryAcquire(2) = %d, %v; want 2, true", got, ok)
	}
	// Requests are clamped to the capacity, not rejected for exceeding it.
	if got, ok := b.TryAcquire(5); ok || got != 0 {
		t.Fatalf("TryAcquire(5) with 1 free = %d, %v; want 0, false", got, ok)
	}
	if got, ok := b.TryAcquire(1); !ok || got != 1 {
		t.Fatalf("TryAcquire(1) = %d, %v; want 1, true", got, ok)
	}
	if _, ok := b.TryAcquire(1); ok {
		t.Fatal("TryAcquire succeeded on a full budget")
	}
	b.Release(3)
	if got, ok := b.TryAcquire(99); !ok || got != 3 {
		t.Fatalf("TryAcquire(99) on empty budget = %d, %v; want clamp to 3", got, ok)
	}
}

func TestBudgetLeaseReleaseIdempotent(t *testing.T) {
	b := NewBudget(2)
	l := b.TryLease(2)
	if l == nil || l.Slots() != 2 {
		t.Fatalf("TryLease(2) = %v", l)
	}
	if b.TryLease(1) != nil {
		t.Fatal("second lease granted on a full budget")
	}
	// Racing release paths (task completion vs worker-death requeue) must
	// return the slots exactly once.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); l.Release() }()
	}
	wg.Wait()
	if got := b.InUse(); got != 0 {
		t.Fatalf("after racing releases InUse = %d, want 0", got)
	}
	var nilLease *Lease
	nilLease.Release() // nil-safe
	if nilLease.Slots() != 0 {
		t.Fatal("nil lease reports slots")
	}
}

// TestBudgetShrinkBelowLeases audits the worker-loss sequence: the
// fleet shrinks its aggregate budget below what outstanding task leases
// hold (survivors keep running). The shrink must not revoke or corrupt
// the leases — InUse stays put, each lease still releases exactly its
// grant without panicking, new acquisitions wait until the books
// balance — and Peak may legitimately read above the shrunken Cap (it
// records the high-water mark against the capacity in effect then).
func TestBudgetShrinkBelowLeases(t *testing.T) {
	b := NewBudget(4)
	l1 := b.TryLease(2)
	l2 := b.TryLease(2)
	if l1 == nil || l2 == nil {
		t.Fatal("seed leases failed")
	}

	b.Resize(1) // two workers died: capacity 4 -> 1 with 4 slots leased
	if got := b.InUse(); got != 4 {
		t.Fatalf("InUse after shrink = %d, want 4 (shrink must not revoke leases)", got)
	}
	if got := b.Peak(); got != 4 {
		t.Fatalf("Peak after shrink = %d, want 4 — the high-water mark predates the shrink", got)
	}
	if b.Peak() <= b.Cap() {
		t.Fatal("test lost its premise: Peak should exceed the shrunken Cap here")
	}

	// New work must wait: nothing is grantable while used > cap.
	if _, ok := b.TryAcquire(1); ok {
		t.Fatal("TryAcquire granted slots while used exceeds the shrunken cap")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if n, err := b.AcquireCtx(ctx, 1); err == nil {
		t.Fatalf("AcquireCtx granted %d slots while used exceeds the shrunken cap", n)
	}

	// Outstanding leases release cleanly (no panic, exact accounting),
	// and only once the books balance do new acquisitions proceed.
	l1.Release()
	if got := b.InUse(); got != 2 {
		t.Fatalf("InUse after first release = %d, want 2", got)
	}
	if _, ok := b.TryAcquire(1); ok {
		t.Fatal("TryAcquire granted slots while still over capacity")
	}
	l2.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after both releases = %d, want 0", got)
	}
	if got, ok := b.TryAcquire(3); !ok || got != 1 {
		t.Fatalf("TryAcquire(3) after drain = %d, %v; want clamp to the new cap 1", got, ok)
	}
	if got := b.Peak(); got != 4 {
		t.Fatalf("Peak after drain = %d, want 4 (it is a lifetime high-water mark)", got)
	}
	b.Release(1)
}

func TestBudgetResize(t *testing.T) {
	b := NewBudget(1)
	if got, _ := b.TryAcquire(1); got != 1 {
		t.Fatal("seed acquire failed")
	}

	// A waiter blocked on a full budget is released by growth.
	done := make(chan int, 1)
	go func() {
		got, _ := b.AcquireCtx(context.Background(), 1)
		done <- got
	}()
	select {
	case got := <-done:
		t.Fatalf("acquire on full budget returned %d before resize", got)
	case <-time.After(20 * time.Millisecond):
	}
	b.Resize(2)
	select {
	case got := <-done:
		if got != 1 {
			t.Fatalf("post-grow acquire = %d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("grow did not wake the waiter")
	}

	// Shrinking below the in-use count strands no one: holders release,
	// and a request wider than the new capacity clamps down to it.
	b.Resize(1) // used == 2 > cap == 1
	if b.Cap() != 1 {
		t.Fatalf("Cap after shrink = %d", b.Cap())
	}
	if _, ok := b.TryAcquire(1); ok {
		t.Fatal("TryAcquire granted slots while used > cap")
	}
	b.Release(2)
	if got, ok := b.TryAcquire(4); !ok || got != 1 {
		t.Fatalf("TryAcquire(4) after shrink = %d, %v; want 1, true", got, ok)
	}
	b.Release(1)

	// A waiter whose request exceeds a capacity shrunk mid-wait re-clamps
	// instead of waiting forever.
	if got, _ := b.TryAcquire(1); got != 1 {
		t.Fatal("seed acquire failed")
	}
	got2 := make(chan int, 1)
	go func() {
		n, _ := b.AcquireCtx(context.Background(), 1)
		got2 <- n
	}()
	time.Sleep(10 * time.Millisecond)
	b.Resize(0) // empty fleet: grantable slots vanish
	b.Release(1)
	select {
	case n := <-got2:
		t.Fatalf("acquire on zero-cap budget returned %d", n)
	case <-time.After(20 * time.Millisecond):
	}
	b.Resize(2)
	select {
	case n := <-got2:
		if n != 1 {
			t.Fatalf("acquire after regrow = %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("regrow did not wake the waiter")
	}
}

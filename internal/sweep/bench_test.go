package sweep

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkBudgetAcquireRelease measures the per-run cost of the shared
// CPU-slot accounting every sweep and every hornet-serve job pays.
func BenchmarkBudgetAcquireRelease(b *testing.B) {
	budget := NewBudget(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := budget.Acquire(2)
		budget.Release(g)
	}
}

// BenchmarkStreamNoop isolates dispatch + seed derivation + result
// streaming for no-op runs (the engine overhead floor).
func BenchmarkStreamNoop(b *testing.B) {
	items := make([]Item, 128)
	for i := range items {
		items[i] = Item{
			Key: fmt.Sprintf("noop/%03d", i),
			Run: func(c Ctx) (any, error) { return c.Seed, nil },
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for range Stream(context.Background(), items, Config{Workers: 4, Seed: 1}) {
		}
	}
}

package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hornet/internal/sim"
)

func noopItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Key: fmt.Sprintf("run%02d", i),
			Run: func(ctx Ctx) (any, error) { return ctx.Seed, nil },
		}
	}
	return items
}

// Per-run seeds must be a pure function of (sweep seed, key): identical
// across worker counts, stable across runs, distinct across keys.
func TestDeterministicSeedDerivation(t *testing.T) {
	items := noopItems(16)
	ref := Run(context.Background(), items, Config{Workers: 1, Seed: 7})
	for _, workers := range []int{2, 4, 16} {
		got := Run(context.Background(), items, Config{Workers: workers, Seed: 7})
		for i := range ref {
			if got[i].Key != ref[i].Key || got[i].Seed != ref[i].Seed {
				t.Fatalf("workers=%d run %d: got (%s,%#x), want (%s,%#x)",
					workers, i, got[i].Key, got[i].Seed, ref[i].Key, ref[i].Seed)
			}
			if got[i].Value.(uint64) != got[i].Seed {
				t.Fatalf("run %d did not receive its derived seed", i)
			}
		}
	}
	seen := map[uint64]string{}
	for _, r := range ref {
		if prev, dup := seen[r.Seed]; dup {
			t.Fatalf("keys %q and %q derived the same seed %#x", prev, r.Key, r.Seed)
		}
		seen[r.Seed] = r.Key
	}
	if ref[0].Seed != sim.DeriveSeed(7, "run00") {
		t.Fatalf("seed not derived via sim.DeriveSeed")
	}
	other := Run(context.Background(), items[:1], Config{Workers: 1, Seed: 8})
	if other[0].Seed == ref[0].Seed {
		t.Fatal("different sweep seeds derived identical run seeds")
	}
}

func TestResultsOrderedByIndex(t *testing.T) {
	items := make([]Item, 12)
	for i := range items {
		d := time.Duration(len(items)-i) * time.Millisecond
		items[i] = Item{
			Key: fmt.Sprintf("run%02d", i),
			Run: func(ctx Ctx) (any, error) {
				time.Sleep(d) // later items finish first
				return ctx.Index, nil
			},
		}
	}
	results := Run(context.Background(), items, Config{Workers: 4, Seed: 1})
	for i, r := range results {
		if r.Index != i || r.Value.(int) != i {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

// The CPU budget is a hard cap: runs of weight W hold W slots, so
// concurrently held slots never exceed the budget even when the worker
// pool could dispatch more.
func TestBudgetAccounting(t *testing.T) {
	const budget = 4
	var held atomic.Int64
	var peak atomic.Int64
	items := make([]Item, 24)
	for i := range items {
		w := 1 + i%3 // weights 1, 2, 3
		items[i] = Item{
			Key:    fmt.Sprintf("run%02d/w%d", i, w),
			Weight: w,
			Run: func(ctx Ctx) (any, error) {
				if ctx.Workers != w {
					return nil, fmt.Errorf("granted %d slots, want %d", ctx.Workers, w)
				}
				h := held.Add(int64(ctx.Workers))
				for {
					p := peak.Load()
					if h <= p || peak.CompareAndSwap(p, h) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				held.Add(-int64(ctx.Workers))
				return nil, nil
			},
		}
	}
	for _, r := range Run(context.Background(), items, Config{Workers: 16, Budget: budget, Seed: 1}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if p := peak.Load(); p > budget {
		t.Fatalf("peak held slots %d exceeds budget %d", p, budget)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak held slots %d: budget never shared", p)
	}
}

// A run asking for more workers than the whole budget is clamped, not
// deadlocked; a weight of zero still occupies one slot.
func TestBudgetClamping(t *testing.T) {
	b := NewBudget(2)
	if got := b.Acquire(10); got != 2 {
		t.Fatalf("Acquire(10) granted %d, want 2", got)
	}
	b.Release(2)
	if got := b.Acquire(0); got != 1 {
		t.Fatalf("Acquire(0) granted %d, want 1", got)
	}
	b.Release(1)
	if b.InUse() != 0 {
		t.Fatalf("slots leaked: %d in use", b.InUse())
	}
}

func TestBudgetBlocksUntilReleased(t *testing.T) {
	b := NewBudget(1)
	b.Acquire(1)
	acquired := make(chan struct{})
	go func() {
		b.Acquire(1)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire succeeded while budget was full")
	case <-time.After(10 * time.Millisecond):
	}
	b.Release(1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Acquire never unblocked after Release")
	}
}

func TestPanicBecomesError(t *testing.T) {
	items := []Item{
		{Key: "ok", Run: func(Ctx) (any, error) { return 1, nil }},
		{Key: "boom", Run: func(Ctx) (any, error) { panic("kaboom") }},
		{Key: "fail", Run: func(Ctx) (any, error) { return nil, errors.New("nope") }},
	}
	results := Run(context.Background(), items, Config{Workers: 3, Seed: 1})
	if results[0].Err != nil {
		t.Fatalf("ok run errored: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("error dropped")
	}
	if _, err := Collect[int](results); err == nil {
		t.Fatal("Collect ignored run errors")
	}
	if rows, err := Collect[int](results[:1]); err != nil || len(rows) != 1 || rows[0] != 1 {
		t.Fatalf("Collect = %v, %v", rows, err)
	}
}

func TestProgressCallbackSerializedAndComplete(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	lastDone := 0
	cfg := Config{Workers: 8, Seed: 1, OnProgress: func(done, total int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done != lastDone+1 || total != 20 {
			t.Errorf("progress (%d,%d) out of sequence after %d", done, total, lastDone)
		}
		lastDone = done
	}}
	Run(context.Background(), noopItems(20), cfg)
	if calls != 20 {
		t.Fatalf("progress called %d times, want 20", calls)
	}
}

func TestStreamDeliversAll(t *testing.T) {
	seen := map[string]bool{}
	for r := range Stream(context.Background(), noopItems(10), Config{Workers: 3, Seed: 1}) {
		seen[r.Key] = true
	}
	if len(seen) != 10 {
		t.Fatalf("stream delivered %d distinct runs, want 10", len(seen))
	}
}

func TestConfigHashStability(t *testing.T) {
	type id struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	a := ConfigHash("fig8", id{"radix", 3})
	b := ConfigHash("fig8", id{"radix", 3})
	if a != b {
		t.Fatalf("hash not deterministic: %s vs %s", a, b)
	}
	if c := ConfigHash("fig8", id{"radix", 4}); c == a {
		t.Fatal("different configs hashed equal")
	}
	if c := ConfigHash("fig9", id{"radix", 3}); c == a {
		t.Fatal("different names hashed equal")
	}
	// Concatenation boundaries matter: ("ab","c") must differ from ("a","bc").
	if ConfigHash("ab", "c") == ConfigHash("a", "bc") {
		t.Fatal("hash ignores value boundaries")
	}
	if len(a) != 16 {
		t.Fatalf("hash %q not 16 hex digits", a)
	}
}

// Golden test: the emitted document bytes are part of the caching
// contract — per-run records in item order, stable field order, no
// wall-clock or worker fields.
func TestWriteJSONGolden(t *testing.T) {
	results := []Result{
		{Index: 0, Key: "fig/a", Seed: 1, Value: map[string]any{"latency": 12.5}},
		{Index: 1, Key: "fig/b", Seed: 2, Err: errors.New("boom"), Wall: time.Second, Workers: 3},
	}
	doc := NewDocument("fig", "00000000deadbeef", 42, results)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "name": "fig",
  "config_hash": "00000000deadbeef",
  "seed": 42,
  "runs": [
    {
      "key": "fig/a",
      "seed": 1,
      "value": {
        "latency": 12.5
      }
    },
    {
      "key": "fig/b",
      "seed": 2,
      "err": "boom"
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestWriteCSV(t *testing.T) {
	results := []Result{
		{Index: 0, Key: "a", Seed: 1, Value: 2.5},
		{Index: 1, Key: "b", Seed: 2, Err: errors.New("skip me")},
		{Index: 2, Key: "c", Seed: 3, Value: 4.0},
	}
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"latency"}, func(r Result) []string {
		return []string{fmt.Sprint(r.Value)}
	}, results)
	if err != nil {
		t.Fatal(err)
	}
	want := "key,seed,latency\na,1,2.5\nc,3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := Cache{Dir: dir}
	if _, ok, err := c.Load("fig", "abc"); err != nil || ok {
		t.Fatalf("empty cache Load = %v, %v", ok, err)
	}
	doc := NewDocument("fig", "abc", 7, []Result{{Key: "k", Seed: 9, Value: "v"}})
	if err := c.Store(doc); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load("fig", "abc")
	if err != nil || !ok {
		t.Fatalf("Load after Store = %v, %v", ok, err)
	}
	if got.Seed != 7 || len(got.Runs) != 1 || got.Runs[0].Key != "k" || got.Runs[0].Value != "v" {
		t.Fatalf("round trip mangled document: %+v", got)
	}
	if _, ok, _ := c.Load("fig", "other"); ok {
		t.Fatal("Load hit on wrong hash")
	}
}

func TestPairSeedGroupsRuns(t *testing.T) {
	a := PairSeed(5, "fig7", "bitcomp", 2)
	b := PairSeed(5, "fig7", "bitcomp", 2)
	if a != b {
		t.Fatal("PairSeed not deterministic")
	}
	if PairSeed(5, "fig7", "bitcomp", 4) == a {
		t.Fatal("PairSeed ignores parts")
	}
	if PairSeed(6, "fig7", "bitcomp", 2) == a {
		t.Fatal("PairSeed ignores base")
	}
}

package sweep

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// Cancelling a sweep mid-flight stops dispatch: completed runs are
// returned intact, undispatched items never start, and the result channel
// still closes (no goroutine leak, no hang).
func TestRunCancelledMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	items := make([]Item, 32)
	for i := range items {
		items[i] = Item{
			Key: fmt.Sprintf("run%02d", i),
			Run: func(c Ctx) (any, error) {
				started.Add(1)
				<-release
				return c.Index, nil
			},
		}
	}
	done := make(chan []Result, 1)
	go func() { done <- Run(ctx, items, Config{Workers: 2, Seed: 1}) }()

	// Wait for the first runs to start, then cancel and let them drain.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	var results []Result
	select {
	case results = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if len(results) == len(items) {
		t.Fatal("cancellation did not truncate the sweep")
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("completed run %q carries error: %v", r.Key, r.Err)
		}
		if r.Value.(int) != r.Index {
			t.Fatalf("completed run %q mangled: %+v", r.Key, r)
		}
	}
	if n := int(started.Load()); n < len(results) {
		t.Fatalf("%d results from %d started runs", len(results), n)
	}
}

// A sweep whose context is cancelled before it starts runs nothing.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	items := []Item{{Key: "a", Run: func(Ctx) (any, error) { ran.Add(1); return nil, nil }}}
	if got := Run(ctx, items, Config{Workers: 1, Seed: 1}); len(got) != 0 {
		t.Fatalf("pre-cancelled sweep returned %d results", len(got))
	}
	if ran.Load() != 0 {
		t.Fatal("pre-cancelled sweep executed a run")
	}
}

// Runs receive the sweep's context so they can exit early themselves.
func TestCtxCarriesContext(t *testing.T) {
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "hello")
	items := []Item{{Key: "a", Run: func(c Ctx) (any, error) {
		if c.Context == nil || c.Context.Value(ctxKey{}) != "hello" {
			return nil, fmt.Errorf("run did not receive the sweep context")
		}
		return nil, nil
	}}}
	for _, r := range Run(ctx, items, Config{Workers: 1, Seed: 1}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// AcquireCtx gives up when the context is cancelled while waiting, and
// the budget stays consistent afterwards.
func TestAcquireCtxCancelled(t *testing.T) {
	b := NewBudget(1)
	if got, err := b.AcquireCtx(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("AcquireCtx on empty budget = %d, %v", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.AcquireCtx(ctx, 1)
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("AcquireCtx returned %v while budget was full", err)
	case <-time.After(10 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("AcquireCtx error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireCtx never observed cancellation")
	}
	b.Release(1)
	if got, err := b.AcquireCtx(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("budget unusable after cancelled waiter: %d, %v", got, err)
	}
	b.Release(1)
	if b.InUse() != 0 {
		t.Fatalf("slots leaked: %d in use", b.InUse())
	}
}

// Peak records the high-water mark and never exceeds the capacity.
func TestBudgetPeak(t *testing.T) {
	b := NewBudget(4)
	if b.Peak() != 0 {
		t.Fatalf("fresh budget peak = %d", b.Peak())
	}
	b.Acquire(3)
	b.Release(3)
	b.Acquire(2)
	if got := b.Peak(); got != 3 {
		t.Fatalf("peak = %d, want 3", got)
	}
	b.Release(2)
	if b.Peak() > b.Cap() {
		t.Fatalf("peak %d exceeds cap %d", b.Peak(), b.Cap())
	}
}

// Two sweeps sharing one Pool never hold more slots together than the
// pool's capacity — the property the serving daemon's scheduler relies
// on to run concurrent jobs without oversubscribing the host.
func TestSharedPoolBoundsConcurrentSweeps(t *testing.T) {
	const cap = 3
	pool := NewBudget(cap)
	var held, peak atomic.Int64
	mkItems := func(tag string) []Item {
		items := make([]Item, 12)
		for i := range items {
			items[i] = Item{
				Key:    fmt.Sprintf("%s/run%02d", tag, i),
				Weight: 1 + i%2,
				Run: func(c Ctx) (any, error) {
					h := held.Add(int64(c.Workers))
					for {
						p := peak.Load()
						if h <= p || peak.CompareAndSwap(p, h) {
							break
						}
					}
					time.Sleep(time.Millisecond)
					held.Add(-int64(c.Workers))
					return nil, nil
				},
			}
		}
		return items
	}
	done := make(chan []Result, 2)
	for _, tag := range []string{"a", "b"} {
		items := mkItems(tag)
		go func() {
			done <- Run(context.Background(), items, Config{Workers: 4, Pool: pool, Seed: 1})
		}()
	}
	for i := 0; i < 2; i++ {
		for _, r := range <-done {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	if p := peak.Load(); p > cap {
		t.Fatalf("two sweeps held %d slots together, pool cap %d", p, cap)
	}
	if got := pool.Peak(); got > cap {
		t.Fatalf("pool peak %d exceeds cap %d", got, cap)
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool leaked %d slots", pool.InUse())
	}
}

// A zero-item sweep completes immediately (no hang on the empty pool).
func TestRunZeroItems(t *testing.T) {
	if got := Run(context.Background(), nil, Config{Workers: 4, Seed: 1}); len(got) != 0 {
		t.Fatalf("zero-item sweep returned %d results", len(got))
	}
}

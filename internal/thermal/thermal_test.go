package thermal

import (
	"math"
	"testing"

	"hornet/internal/config"
)

func cfg() config.ThermalConfig {
	return config.ThermalConfig{
		AmbientC:       45,
		RVerticalKPerW: 8,
		RLateralKPerW:  2.5,
		CJPerK:         0.001,
	}
}

func TestZeroPowerStaysAmbient(t *testing.T) {
	g, err := NewGrid(4, 4, cfg())
	if err != nil {
		t.Fatal(err)
	}
	g.Step(make([]float64, 16), 0.1)
	for i, v := range g.Temps() {
		if math.Abs(v-45) > 1e-9 {
			t.Fatalf("tile %d drifted to %v with zero power", i, v)
		}
	}
}

func TestUniformPowerSteadyState(t *testing.T) {
	g, _ := NewGrid(4, 4, cfg())
	p := make([]float64, 16)
	for i := range p {
		p[i] = 2.0
	}
	temps := g.SteadyState(p)
	// Uniform power: no lateral flow, every tile at ambient + P*Rv.
	want := 45 + 2.0*8
	for i, v := range temps {
		if math.Abs(v-want) > 1e-6 {
			t.Fatalf("tile %d steady %v, want %v", i, v, want)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	g, _ := NewGrid(4, 4, cfg())
	p := make([]float64, 16)
	p[5] = 3.0 // single hot tile
	steady := g.SteadyState(p)
	for i := 0; i < 10_000; i++ {
		g.Step(p, 0.001)
	}
	for i := range steady {
		if math.Abs(g.Temps()[i]-steady[i]) > 0.05 {
			t.Fatalf("tile %d transient %v vs steady %v", i, g.Temps()[i], steady[i])
		}
	}
}

func TestHeatSpreadsLaterally(t *testing.T) {
	g, _ := NewGrid(3, 3, cfg())
	p := make([]float64, 9)
	p[4] = 5.0 // center
	temps := g.SteadyState(p)
	center := temps[4]
	edge := temps[1]
	corner := temps[0]
	if !(center > edge && edge > corner && corner > 45) {
		t.Fatalf("no monotone spread: center=%v edge=%v corner=%v", center, edge, corner)
	}
}

func TestEnergyConservationAtSteadyState(t *testing.T) {
	g, _ := NewGrid(4, 4, cfg())
	p := make([]float64, 16)
	for i := range p {
		p[i] = float64(i) * 0.1
	}
	temps := g.SteadyState(p)
	// Total heat out through vertical resistances equals total power in.
	out := 0.0
	in := 0.0
	for i, v := range temps {
		out += (v - 45) / 8
		in += p[i]
	}
	if math.Abs(out-in) > 1e-6 {
		t.Fatalf("energy imbalance: in=%v out=%v", in, out)
	}
}

func TestMaxAndMean(t *testing.T) {
	g, _ := NewGrid(2, 2, cfg())
	p := []float64{0, 0, 0, 4}
	for i := 0; i < 20_000; i++ {
		g.Step(p, 0.001)
	}
	m, idx := g.Max()
	if idx != 3 {
		t.Fatalf("hottest tile %d, want 3", idx)
	}
	if mean := g.Mean(); mean >= m || mean < 45 {
		t.Fatalf("mean %v outside (45, max %v)", mean, m)
	}
}

func TestStepPanicsOnBadVector(t *testing.T) {
	g, _ := NewGrid(2, 2, cfg())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wrong power vector length")
		}
	}()
	g.Step(make([]float64, 3), 0.1)
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := NewGrid(0, 2, cfg()); err == nil {
		t.Fatal("zero-width grid accepted")
	}
	bad := cfg()
	bad.CJPerK = 0
	if _, err := NewGrid(2, 2, bad); err == nil {
		t.Fatal("zero capacitance accepted")
	}
}

func TestResetReturnsToAmbient(t *testing.T) {
	g, _ := NewGrid(2, 2, cfg())
	g.Step([]float64{5, 5, 5, 5}, 0.01)
	g.Reset()
	for _, v := range g.Temps() {
		if v != 45 {
			t.Fatal("reset did not restore ambient")
		}
	}
}

func TestHeatmapString(t *testing.T) {
	s := HeatmapString([]float64{1, 2, 3, 4}, 2)
	if s != "  1.00   2.00 \n  3.00   4.00 \n" {
		t.Fatalf("heatmap format: %q", s)
	}
}

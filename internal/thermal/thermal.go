// Package thermal implements HORNET's HOTSPOT-style thermal model (paper
// §II-B, §IV-E): the die is a grid of tiles, each an RC node with a
// vertical resistance to the heat sink (held at ambient), lateral
// resistances to its four neighbours, and a thermal capacitance. The
// model supports transient integration driven by per-epoch tile power
// (temperature-versus-time traces, Fig 13) and a steady-state solve
// (per-tile temperature maps, Fig 14).
package thermal

import (
	"fmt"
	"math"

	"hornet/internal/config"
)

// Grid is the RC thermal network over a W x H tile array.
type Grid struct {
	w, h  int
	cfg   config.ThermalConfig
	temps []float64 // current tile temperatures (deg C)
}

// NewGrid creates a grid with all tiles at ambient temperature.
func NewGrid(w, h int, cfg config.ThermalConfig) (*Grid, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("thermal: invalid grid %dx%d", w, h)
	}
	if cfg.RVerticalKPerW <= 0 || cfg.RLateralKPerW <= 0 || cfg.CJPerK <= 0 {
		return nil, fmt.Errorf("thermal: resistances and capacitance must be positive")
	}
	g := &Grid{w: w, h: h, cfg: cfg, temps: make([]float64, w*h)}
	for i := range g.temps {
		g.temps[i] = cfg.AmbientC
	}
	return g, nil
}

// Tiles returns the tile count.
func (g *Grid) Tiles() int { return g.w * g.h }

// Temps returns the current temperature vector (live; copy to retain).
func (g *Grid) Temps() []float64 { return g.temps }

// TempAt returns the temperature of tile (x, y).
func (g *Grid) TempAt(x, y int) float64 { return g.temps[y*g.w+x] }

// Reset returns every tile to ambient.
func (g *Grid) Reset() {
	for i := range g.temps {
		g.temps[i] = g.cfg.AmbientC
	}
}

// Step advances the transient solution by dt seconds with the given
// per-tile power input (W). Forward Euler with internal substepping for
// stability: the substep is bounded by a quarter of the fastest RC time
// constant.
func (g *Grid) Step(powerW []float64, dt float64) {
	if len(powerW) != len(g.temps) {
		panic(fmt.Sprintf("thermal: power vector has %d entries for %d tiles", len(powerW), len(g.temps)))
	}
	// Fastest time constant: C * (Rv || Rl/4).
	gTot := 1/g.cfg.RVerticalKPerW + 4/g.cfg.RLateralKPerW
	tau := g.cfg.CJPerK / gTot
	sub := dt
	steps := 1
	if sub > tau/4 {
		steps = int(math.Ceil(dt / (tau / 4)))
		sub = dt / float64(steps)
	}
	next := make([]float64, len(g.temps))
	for s := 0; s < steps; s++ {
		for y := 0; y < g.h; y++ {
			for x := 0; x < g.w; x++ {
				i := y*g.w + x
				q := powerW[i]
				q -= (g.temps[i] - g.cfg.AmbientC) / g.cfg.RVerticalKPerW
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || nx >= g.w || ny < 0 || ny >= g.h {
						continue
					}
					q -= (g.temps[i] - g.temps[ny*g.w+nx]) / g.cfg.RLateralKPerW
				}
				next[i] = g.temps[i] + sub*q/g.cfg.CJPerK
			}
		}
		copy(g.temps, next)
	}
}

// SteadyState solves the equilibrium temperatures for a constant per-tile
// power input using Gauss-Seidel iteration, without disturbing the
// transient state. Converges because the conductance matrix is strictly
// diagonally dominant.
func (g *Grid) SteadyState(powerW []float64) []float64 {
	if len(powerW) != len(g.temps) {
		panic(fmt.Sprintf("thermal: power vector has %d entries for %d tiles", len(powerW), len(g.temps)))
	}
	t := make([]float64, len(g.temps))
	for i := range t {
		t[i] = g.cfg.AmbientC
	}
	gv := 1 / g.cfg.RVerticalKPerW
	gl := 1 / g.cfg.RLateralKPerW
	for iter := 0; iter < 10_000; iter++ {
		maxDelta := 0.0
		for y := 0; y < g.h; y++ {
			for x := 0; x < g.w; x++ {
				i := y*g.w + x
				num := powerW[i] + gv*g.cfg.AmbientC
				den := gv
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || nx >= g.w || ny < 0 || ny >= g.h {
						continue
					}
					num += gl * t[ny*g.w+nx]
					den += gl
				}
				v := num / den
				if d := math.Abs(v - t[i]); d > maxDelta {
					maxDelta = d
				}
				t[i] = v
			}
		}
		if maxDelta < 1e-9 {
			break
		}
	}
	return t
}

// Max returns the hottest tile's temperature and index.
func (g *Grid) Max() (float64, int) {
	return maxOf(g.temps)
}

// Mean returns the average die temperature.
func (g *Grid) Mean() float64 {
	s := 0.0
	for _, v := range g.temps {
		s += v
	}
	return s / float64(len(g.temps))
}

func maxOf(v []float64) (float64, int) {
	m, mi := math.Inf(-1), -1
	for i, x := range v {
		if x > m {
			m, mi = x, i
		}
	}
	return m, mi
}

// HeatmapString renders a temperature vector as a W x H text heat map
// (one row per mesh row, values in deg C) — used by the thermal example
// and the Fig 14 harness.
func HeatmapString(temps []float64, w int) string {
	out := ""
	for i, v := range temps {
		if i > 0 && i%w == 0 {
			out += "\n"
		}
		out += fmt.Sprintf("%6.2f ", v)
	}
	return out + "\n"
}

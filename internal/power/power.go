// Package power implements HORNET's ORION-2.0-style NoC power model
// (paper §II-B): dynamic energy charged per micro-architectural event
// (buffer read/write, crossbar traversal, arbitration, link flit
// traversal) plus a constant leakage term per router, sampled per tile at
// a fixed epoch so power can drive the thermal model and per-time-period
// reporting. Event counts come from the statistics the routers already
// collect; configuration parameters (energies, leakage, clock) come from
// config.PowerConfig.
package power

import (
	"fmt"

	"hornet/internal/config"
	"hornet/internal/snapshot"
)

// EventCounts is a snapshot of one tile's cumulative power-relevant
// events (monotone counters).
type EventCounts struct {
	BufReads     uint64
	BufWrites    uint64
	XbarTransits uint64
	LinkTransits uint64
	ArbEvents    uint64
}

// Sample is one tile's power during one epoch.
type Sample struct {
	Cycle    uint64 // epoch end cycle
	DynamicW float64
	LeakageW float64
}

// TotalW returns dynamic plus leakage power.
func (s Sample) TotalW() float64 { return s.DynamicW + s.LeakageW }

// Model accumulates per-tile, per-epoch power. Each tile samples from its
// own worker thread into its own series; readers aggregate after the run.
type Model struct {
	cfg    config.PowerConfig
	tiles  int
	series [][]Sample
	last   []EventCounts
}

// New creates a power model for the given tile count.
func New(cfg config.PowerConfig, tiles int) *Model {
	return &Model{
		cfg:    cfg,
		tiles:  tiles,
		series: make([][]Sample, tiles),
		last:   make([]EventCounts, tiles),
	}
}

// EpochCycles returns the sampling period.
func (m *Model) EpochCycles() uint64 { return uint64(m.cfg.EpochCycles) }

// Sample folds a tile's cumulative counters at an epoch boundary into a
// power sample. Must be called from the tile's own worker thread.
func (m *Model) Sample(tile int, now EventCounts, cycle uint64) {
	prev := m.last[tile]
	m.last[tile] = now
	d := EventCounts{
		BufReads:     now.BufReads - prev.BufReads,
		BufWrites:    now.BufWrites - prev.BufWrites,
		XbarTransits: now.XbarTransits - prev.XbarTransits,
		LinkTransits: now.LinkTransits - prev.LinkTransits,
		ArbEvents:    now.ArbEvents - prev.ArbEvents,
	}
	energyPJ := float64(d.BufReads)*m.cfg.BufReadPJ +
		float64(d.BufWrites)*m.cfg.BufWritePJ +
		float64(d.XbarTransits)*m.cfg.XbarPJ +
		float64(d.LinkTransits)*m.cfg.LinkPJ +
		float64(d.ArbEvents)*m.cfg.ArbPJ
	epochSec := m.EpochSeconds()
	m.series[tile] = append(m.series[tile], Sample{
		Cycle:    cycle,
		DynamicW: energyPJ * 1e-12 / epochSec,
		LeakageW: m.cfg.LeakageMW * 1e-3,
	})
}

// SaveState serializes the model: per-tile epoch baselines and the
// accumulated sample series.
func (m *Model) SaveState(w *snapshot.Writer) {
	w.Int(m.tiles)
	for t := 0; t < m.tiles; t++ {
		lc := m.last[t]
		w.Uint64(lc.BufReads)
		w.Uint64(lc.BufWrites)
		w.Uint64(lc.XbarTransits)
		w.Uint64(lc.LinkTransits)
		w.Uint64(lc.ArbEvents)
		w.Int(len(m.series[t]))
		for _, s := range m.series[t] {
			w.Uint64(s.Cycle)
			w.Float64(s.DynamicW)
			w.Float64(s.LeakageW)
		}
	}
}

// LoadState restores model state saved by SaveState.
func (m *Model) LoadState(r *snapshot.Reader) error {
	tiles := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if tiles != m.tiles {
		return &snapshot.MismatchError{Field: "power tiles",
			Got: fmt.Sprint(tiles), Want: fmt.Sprint(m.tiles)}
	}
	last := make([]EventCounts, m.tiles)
	series := make([][]Sample, m.tiles)
	for t := 0; t < m.tiles; t++ {
		last[t] = EventCounts{
			BufReads:     r.Uint64(),
			BufWrites:    r.Uint64(),
			XbarTransits: r.Uint64(),
			LinkTransits: r.Uint64(),
			ArbEvents:    r.Uint64(),
		}
		n := r.Count(1 << 26)
		for i := 0; i < n; i++ {
			series[t] = append(series[t], Sample{
				Cycle:    r.Uint64(),
				DynamicW: r.Float64(),
				LeakageW: r.Float64(),
			})
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	m.last = last
	m.series = series
	return nil
}

// EpochSeconds returns the wall-clock duration of one epoch at the
// configured clock.
func (m *Model) EpochSeconds() float64 {
	return float64(m.cfg.EpochCycles) / (m.cfg.ClockGHz * 1e9)
}

// Series returns one tile's sample series.
func (m *Model) Series(tile int) []Sample { return m.series[tile] }

// Epochs returns the number of complete epochs sampled (minimum across
// tiles, which only differs transiently at run end).
func (m *Model) Epochs() int {
	if m.tiles == 0 {
		return 0
	}
	n := len(m.series[0])
	for _, s := range m.series[1:] {
		if len(s) < n {
			n = len(s)
		}
	}
	return n
}

// EpochPower returns the per-tile total power (W) during epoch e.
func (m *Model) EpochPower(e int) []float64 {
	out := make([]float64, m.tiles)
	for t := 0; t < m.tiles; t++ {
		if e < len(m.series[t]) {
			out[t] = m.series[t][e].TotalW()
		} else {
			out[t] = m.cfg.LeakageMW * 1e-3
		}
	}
	return out
}

// MeanPower returns each tile's time-averaged total power (W).
func (m *Model) MeanPower() []float64 {
	out := make([]float64, m.tiles)
	for t := 0; t < m.tiles; t++ {
		if len(m.series[t]) == 0 {
			out[t] = m.cfg.LeakageMW * 1e-3
			continue
		}
		sum := 0.0
		for _, s := range m.series[t] {
			sum += s.TotalW()
		}
		out[t] = sum / float64(len(m.series[t]))
	}
	return out
}

// TotalEnergyJ returns chip-wide energy over all sampled epochs.
func (m *Model) TotalEnergyJ() float64 {
	epochSec := m.EpochSeconds()
	total := 0.0
	for t := 0; t < m.tiles; t++ {
		for _, s := range m.series[t] {
			total += s.TotalW() * epochSec
		}
	}
	return total
}

// PeakPowerW returns the highest per-tile epoch power observed and the
// tile and epoch where it occurred.
func (m *Model) PeakPowerW() (w float64, tile, epoch int) {
	for t := 0; t < m.tiles; t++ {
		for e, s := range m.series[t] {
			if s.TotalW() > w {
				w, tile, epoch = s.TotalW(), t, e
			}
		}
	}
	return w, tile, epoch
}

// String summarizes the model state.
func (m *Model) String() string {
	peak, tile, _ := m.PeakPowerW()
	return fmt.Sprintf("power: tiles=%d epochs=%d peak=%.3fW@tile%d energy=%.3gJ",
		m.tiles, m.Epochs(), peak, tile, m.TotalEnergyJ())
}

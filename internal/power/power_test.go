package power

import (
	"math"
	"testing"

	"hornet/internal/config"
)

func pcfg() config.PowerConfig {
	return config.PowerConfig{
		BufReadPJ: 1, BufWritePJ: 2, XbarPJ: 3, LinkPJ: 4, ArbPJ: 0.5,
		LeakageMW: 10, ClockGHz: 1, EpochCycles: 1000,
	}
}

func TestSampleComputesDeltaEnergy(t *testing.T) {
	m := New(pcfg(), 2)
	m.Sample(0, EventCounts{BufReads: 100, BufWrites: 100, XbarTransits: 100, LinkTransits: 100, ArbEvents: 100}, 1000)
	m.Sample(0, EventCounts{BufReads: 300, BufWrites: 100, XbarTransits: 100, LinkTransits: 100, ArbEvents: 100}, 2000)
	s := m.Series(0)
	if len(s) != 2 {
		t.Fatalf("series length %d", len(s))
	}
	// Epoch 1: 100 events each: (1+2+3+4+0.5)*100 pJ over 1us = 1.05 mW.
	wantW := 100 * (1 + 2 + 3 + 4 + 0.5) * 1e-12 / 1e-6
	if math.Abs(s[0].DynamicW-wantW) > 1e-12 {
		t.Fatalf("epoch 0 dynamic %v, want %v", s[0].DynamicW, wantW)
	}
	// Epoch 2: only 200 extra buffer reads.
	wantW2 := 200 * 1 * 1e-12 / 1e-6
	if math.Abs(s[1].DynamicW-wantW2) > 1e-12 {
		t.Fatalf("epoch 1 dynamic %v, want %v", s[1].DynamicW, wantW2)
	}
	if s[0].LeakageW != 0.01 {
		t.Fatalf("leakage %v, want 0.01 W", s[0].LeakageW)
	}
}

func TestEpochPowerFallsBackToLeakage(t *testing.T) {
	m := New(pcfg(), 2)
	m.Sample(0, EventCounts{BufReads: 10}, 1000)
	p := m.EpochPower(0)
	if p[0] <= p[1] {
		t.Fatalf("sampled tile (%v) should exceed unsampled (%v)", p[0], p[1])
	}
	if p[1] != 0.01 {
		t.Fatalf("unsampled tile power %v, want leakage 0.01", p[1])
	}
}

func TestMeanAndPeak(t *testing.T) {
	m := New(pcfg(), 1)
	m.Sample(0, EventCounts{BufReads: 1000}, 1000)
	m.Sample(0, EventCounts{BufReads: 3000}, 2000)
	mp := m.MeanPower()
	peak, tile, epoch := m.PeakPowerW()
	if tile != 0 || epoch != 1 {
		t.Fatalf("peak at tile %d epoch %d", tile, epoch)
	}
	if !(mp[0] < peak && mp[0] > 0.01) {
		t.Fatalf("mean %v vs peak %v", mp[0], peak)
	}
}

func TestTotalEnergy(t *testing.T) {
	m := New(pcfg(), 1)
	m.Sample(0, EventCounts{}, 1000) // leakage only: 0.01 W * 1us
	e := m.TotalEnergyJ()
	if math.Abs(e-0.01*1e-6) > 1e-15 {
		t.Fatalf("energy %v", e)
	}
}

func TestEpochsIsMinimum(t *testing.T) {
	m := New(pcfg(), 2)
	m.Sample(0, EventCounts{}, 1000)
	m.Sample(0, EventCounts{}, 2000)
	m.Sample(1, EventCounts{}, 1000)
	if m.Epochs() != 1 {
		t.Fatalf("Epochs() = %d, want min = 1", m.Epochs())
	}
}

// Package lru implements the small byte-blob LRU shared by the
// service result store and the sweep warmup-snapshot cache: string keys
// to []byte values, bounded by entry count and/or total bytes, with the
// rule that the newest entry always stays resident (the producer that
// just inserted it must be able to serve it even when it alone exceeds
// the byte bound).
//
// Cache is NOT safe for concurrent use; callers guard it with their own
// mutex (they all have one protecting adjacent state anyway).
package lru

import "container/list"

// Cache is a bounded most-recently-used-first store.
type Cache struct {
	maxEntries int   // 0 = unbounded
	maxBytes   int64 // 0 = unbounded

	m         map[string]*list.Element
	l         *list.List // front = most recently used
	bytes     int64
	evictions uint64
}

type entry struct {
	key string
	b   []byte
}

// New returns an unbounded cache; bound it with SetBounds.
func New() *Cache {
	return &Cache{m: map[string]*list.Element{}, l: list.New()}
}

// SetBounds configures the limits (0 = unbounded) and applies them.
func (c *Cache) SetBounds(maxEntries int, maxBytes int64) {
	c.maxEntries, c.maxBytes = maxEntries, maxBytes
	c.evict()
}

// Get returns the value and promotes the entry to most-recently-used.
func (c *Cache) Get(key string) ([]byte, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*entry).b, true
}

// Put inserts or refreshes an entry at the front, then enforces the
// bounds (the just-inserted entry itself is never evicted).
func (c *Cache) Put(key string, b []byte) {
	if el, ok := c.m[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(b)) - int64(len(e.b))
		e.b = b
		c.l.MoveToFront(el)
	} else {
		c.m[key] = c.l.PushFront(&entry{key: key, b: b})
		c.bytes += int64(len(b))
	}
	c.evict()
}

// Delete removes an entry if present.
func (c *Cache) Delete(key string) {
	if el, ok := c.m[key]; ok {
		c.remove(el)
	}
}

func (c *Cache) evict() {
	for c.l.Len() > 1 &&
		((c.maxEntries > 0 && c.l.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		c.remove(c.l.Back())
		c.evictions++
	}
}

func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*entry)
	c.l.Remove(el)
	delete(c.m, e.key)
	c.bytes -= int64(len(e.b))
}

// Len returns the resident entry count.
func (c *Cache) Len() int { return c.l.Len() }

// Bytes returns the resident byte total.
func (c *Cache) Bytes() int64 { return c.bytes }

// Evictions returns how many entries the bounds have dropped.
func (c *Cache) Evictions() uint64 { return c.evictions }

package workloads

import (
	"fmt"
	"strings"
)

// BlackScholesSource generates the fixed-point Black-Scholes-like option
// pricing kernel standing in for PARSEC BLACKSCHOLES on the MIPS
// frontend (paper Fig 6a). Each core prices `options` synthetic options
// in Q16.16 fixed point — a rational-polynomial CDF approximation with
// the same multiply/shift/branch mix as the real kernel's hot loop — and
// ships a partial result to core 0 every `batch` options, generating the
// light, compute-dominated traffic the paper observes for this workload.
// Core 0 accumulates all partial sums, prints the total, and every core
// exits when done.
func BlackScholesSource(options, batch int) string {
	var s strings.Builder
	fmt.Fprintf(&s, `# Fixed-point Black-Scholes-like kernel: %d options, batch %d.
	.data
NOPT:	.word %d
BATCH:	.word %d
sendbuf: .space 8
recvbuf: .space 8
	.text
`, options, batch, options, batch)
	s.WriteString(`
main:
	li   $v0, 64
	syscall
	move $s0, $v0        # s0 = id
	li   $v0, 65
	syscall
	move $s1, $v0        # s1 = cores
	la   $t0, NOPT
	lw   $s2, 0($t0)     # s2 = options per core
	la   $t0, BATCH
	lw   $s3, 0($t0)     # s3 = batch size

	li   $s4, 0          # s4 = option index
	li   $s5, 0          # s5 = running partial sum (Q16.16)
	li   $s6, 0          # s6 = options since last send

opt_loop:
	beq  $s4, $s2, finish

	# Synthesize option parameters from (id, index): spot and strike in
	# Q16.16, both in a plausible range.
	mul  $t0, $s0, 37
	addu $t0, $t0, $s4
	andi $t1, $t0, 63
	addiu $t1, $t1, 64    # spot/2^16 in [64,128)
	sll  $t1, $t1, 16     # t1 = spot (Q16.16)
	andi $t2, $t0, 31
	addiu $t2, $t2, 80
	sll  $t2, $t2, 16     # t2 = strike

	# d = (spot - strike) scaled: d = (spot - strike) >> 4
	subu $t3, $t1, $t2
	sra  $t3, $t3, 4

	# CDF-like rational approximation in fixed point:
	#   n(d) ~ 1/2 + d*(a1 + d*(a2 + d*a3)) with a* constants (Q16.16).
	li   $t4, 0x3F00      # a3
	sra  $t5, $t3, 8
	mult $t5, $t4
	mflo $t6
	sra  $t6, $t6, 8
	li   $t4, 0x6200      # a2
	addu $t6, $t6, $t4
	sra  $t5, $t3, 8
	mult $t5, $t6
	mflo $t6
	sra  $t6, $t6, 8
	li   $t4, 0x9A00      # a1
	addu $t6, $t6, $t4
	sra  $t5, $t3, 8
	mult $t5, $t6
	mflo $t6
	sra  $t6, $t6, 8
	li   $t4, 0x8000      # one half (Q16.16 >> 1)
	addu $t6, $t6, $t4

	# price = spot * n(d) - strike * n(d - const)
	sra  $t5, $t1, 16
	mult $t5, $t6
	mflo $t7
	addiu $t4, $t6, -0x1200
	sra  $t5, $t2, 16
	mult $t5, $t4
	mflo $t5
	subu $t7, $t7, $t5
	addu $s5, $s5, $t7

	addiu $s4, $s4, 1
	addiu $s6, $s6, 1
	bne  $s6, $s3, opt_loop

	# Ship the partial sum to core 0 (unless we are core 0).
	li   $s6, 0
	beqz $s0, opt_loop
	la   $t0, sendbuf
	sw   $s5, 0($t0)
	sw   $s4, 4($t0)
	move $a1, $t0
	li   $a0, 0
	li   $a2, 8
	li   $v0, 60
	syscall
	li   $s5, 0
	b    opt_loop

finish:
	bnez $s0, worker_done

	# Core 0: collect one final partial from every other core... workers
	# send ceil(options/batch) partials; gather them all.
	li   $t8, 0          # partials received
	la   $t0, NOPT
	lw   $t1, 0($t0)
	la   $t0, BATCH
	lw   $t2, 0($t0)
	addu $t3, $t1, $t2
	addiu $t3, $t3, -1
	divu $t3, $t2
	mflo $t3             # partials per worker
	addiu $t4, $s1, -1
	mul  $t9, $t3, $t4   # total partials expected
gather:
	beq  $t8, $t9, report
	li   $a0, -1
	la   $a1, recvbuf
	li   $a2, 8
	li   $v0, 63
	syscall
	la   $t0, recvbuf
	lw   $t1, 0($t0)
	addu $s5, $s5, $t1
	addiu $t8, $t8, 1
	b    gather

report:
	sra  $a0, $s5, 16    # integer part of the grand total
	li   $v0, 1
	syscall
	li   $a0, 0
	li   $v0, 10
	syscall

worker_done:
	# Workers send a final (possibly short) partial if anything remains,
	# then exit. (The batch logic above sends only full batches; any tail
	# was already included since options % batch == 0 in our harnesses.)
	li   $a0, 0
	li   $v0, 10
	syscall
`)
	return s.String()
}

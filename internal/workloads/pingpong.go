package workloads

import (
	"fmt"
	"strings"
)

// PingPongSource generates the MPI-style ping-pong microbenchmark: node 0
// sends a 4-byte counter to node N-1, which increments and returns it,
// for the given number of rounds; node 0 then prints the final value
// (equal to rounds) and every core exits. Nodes other than 0 and N-1
// exit immediately. It exercises the network-port DMA path (payload-
// bearing user packets) end to end and runs for a duration roughly
// linear in rounds, which makes it the checkpoint tests' workhorse.
func PingPongSource(rounds int) string {
	return fmt.Sprintf(`# MPI ping-pong, %d rounds.
	.data
buf:	.space 8
	.text
main:
	li   $v0, 64
	syscall
	move $s0, $v0        # id
	li   $v0, 65
	syscall
	addiu $s1, $v0, -1   # partner/last id
	li   $s2, %d         # rounds
	bnez $s0, responder

	# node 0: initiate
	li   $s3, 0          # counter
p0_loop:
	la   $t0, buf
	sw   $s3, 0($t0)
	move $a0, $s1
	la   $a1, buf
	li   $a2, 4
	li   $v0, 60
	syscall
	move $a0, $s1
	la   $a1, buf
	li   $a2, 4
	li   $v0, 63
	syscall
	la   $t0, buf
	lw   $s3, 0($t0)
	addiu $s2, $s2, -1
	bgtz $s2, p0_loop
	move $a0, $s3
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall

responder:
	bne  $s0, $s1, idle
r_loop:
	li   $a0, 0
	la   $a1, buf
	li   $a2, 4
	li   $v0, 63
	syscall
	la   $t0, buf
	lw   $t1, 0($t0)
	addiu $t1, $t1, 1
	sw   $t1, 0($t0)
	li   $a0, 0
	la   $a1, buf
	li   $a2, 4
	li   $v0, 60
	syscall
	addiu $s2, $s2, -1
	bgtz $s2, r_loop
idle:
	li   $v0, 10
	syscall
`, rounds, rounds)
}

// SharedPingPongSource generates the shared-memory analogue of the
// ping-pong: core 0 and the core at node `partner` hand a round counter
// back and forth through two flag words on distinct cache lines (0x1000
// and 0x2000), driving the full MSI invalidate/forward protocol once per
// hand-off. Core 0 prints the final counter (equal to rounds); any other
// core exits immediately. All communication is through the
// coherent-memory fabric — no network syscalls — so it is the
// MIPS-shared-memory checkpoint scenario.
func SharedPingPongSource(rounds, partner int) string {
	var s strings.Builder
	fmt.Fprintf(&s, `# Shared-memory ping-pong, %d rounds, partner node %d.
	.text
main:
	li   $v0, 64
	syscall
	move $s0, $v0        # id
	li   $s2, %d         # rounds
	li   $s4, 0x1000     # ping word (core 0 writes)
	li   $s5, 0x2000     # pong word (the partner writes)
	li   $s3, 1          # round counter
	bnez $s0, partner
	beqz $s2, done0

w_loop:
	sw   $s3, 0($s4)     # publish round i
w_spin:
	lw   $t0, 0($s5)     # wait for the echo
	bne  $t0, $s3, w_spin
	addiu $s3, $s3, 1
	ble  $s3, $s2, w_loop
done0:
	lw   $a0, 0($s5)
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall

partner:
	li   $t1, %d
	bne  $s0, $t1, idle
	beqz $s2, idle
p_loop:
p_spin:
	lw   $t0, 0($s4)     # wait for round i
	bne  $t0, $s3, p_spin
	sw   $s3, 0($s5)     # echo it
	addiu $s3, $s3, 1
	ble  $s3, $s2, p_loop
idle:
	li   $v0, 10
	syscall
`, rounds, partner, rounds, partner)
	return s.String()
}

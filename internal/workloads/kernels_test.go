package workloads

import (
	"strings"
	"testing"

	"hornet/internal/mips"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	for _, want := range []string{"reduction", "matmul-blocked"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
		if _, ok := Lookup(want); !ok {
			t.Fatalf("Lookup(%q) failed", want)
		}
	}
	if _, ok := Lookup("no-such-kernel"); ok {
		t.Fatal("Lookup of unknown kernel succeeded")
	}
}

func TestKernelNormalize(t *testing.T) {
	k, _ := Lookup("matmul-blocked")

	// nil params fold to the full default set.
	p, err := k.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Get("n", 0) != 8 || p.Get("b", 0) != 4 {
		t.Fatalf("defaults not folded: %v", p)
	}

	// Partial params keep the explicit value, default the rest.
	p, err = k.Normalize(Params{"b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Get("n", 0) != 8 || p.Get("b", 0) != 2 {
		t.Fatalf("partial normalize wrong: %v", p)
	}

	// Unknown parameters are rejected with the accepted set named.
	if _, err = k.Normalize(Params{"q": 3}); err == nil {
		t.Fatal("unknown param accepted")
	} else if !strings.Contains(err.Error(), `"q"`) || !strings.Contains(err.Error(), "b, n") {
		t.Fatalf("unhelpful unknown-param error: %v", err)
	}
}

func TestKernelValidateBounds(t *testing.T) {
	red, _ := Lookup("reduction")
	mm, _ := Lookup("matmul-blocked")
	cases := []struct {
		kernel Kernel
		params Params
		nodes  int
		ok     bool
	}{
		{red, Params{"elems": 64}, 4, true},
		{red, Params{"elems": 1}, 2, true},
		{red, Params{"elems": 64}, 3, false},  // not a power of two
		{red, Params{"elems": 64}, 1, false},  // too few nodes
		{red, Params{"elems": 0}, 4, false},   // elems out of range
		{mm, Params{"n": 8, "b": 4}, 5, true}, // any node count
		{mm, Params{"n": 8, "b": 3}, 4, false},
		{mm, Params{"n": 0, "b": 1}, 4, false},
		{mm, Params{"n": 8, "b": 16}, 4, false},
	}
	for i, c := range cases {
		err := c.kernel.Validate(c.params, c.nodes)
		if (err == nil) != c.ok {
			t.Errorf("case %d: kernel %s params %v nodes %d: err=%v, want ok=%v",
				i, c.kernel.Name, c.params, c.nodes, err, c.ok)
		}
	}
}

func TestReductionSourceAssembles(t *testing.T) {
	for _, elems := range []int{1, 16, 64, 1000} {
		if _, err := mips.Assemble(ReductionSource(elems)); err != nil {
			t.Fatalf("elems=%d: %v", elems, err)
		}
	}
}

func TestMatmulBlockedSourceAssembles(t *testing.T) {
	for _, c := range []struct{ n, b int }{{4, 1}, {4, 4}, {8, 4}, {8, 8}, {16, 4}} {
		if _, err := mips.Assemble(MatmulBlockedSource(c.n, c.b)); err != nil {
			t.Fatalf("n=%d b=%d: %v", c.n, c.b, err)
		}
	}
}

func TestReductionChecksumMatchesDirectSum(t *testing.T) {
	// Recompute the 4-core, 8-element total by hand from the element
	// formula and compare with the helper.
	var want int32
	for id := 0; id < 4; id++ {
		for k := 0; k < 8; k++ {
			want += int32((id*31 + k*7 + 1) & 0xFF)
		}
	}
	if got := ReductionChecksum(4, 8); got != want {
		t.Fatalf("ReductionChecksum(4, 8) = %d, want %d", got, want)
	}
}

func TestMatmulChecksumBlockInvariant(t *testing.T) {
	// The checksum is defined on the full product, so it cannot depend
	// on the block size; MatmulTotal is the per-core sum.
	if MatmulChecksum(0, 8) == 0 && MatmulChecksum(1, 8) == 0 {
		t.Fatal("degenerate checksums")
	}
	var want int32
	for id := 0; id < 6; id++ {
		want += MatmulChecksum(id, 8)
	}
	if got := MatmulTotal(6, 8); got != want {
		t.Fatalf("MatmulTotal(6, 8) = %d, want %d", got, want)
	}
}

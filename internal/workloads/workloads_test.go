package workloads

import (
	"testing"

	"hornet/internal/mips"
)

func TestCannonSourceAssembles(t *testing.T) {
	for _, q := range []int{2, 4, 8} {
		src := CannonSource(q, 4)
		if _, err := mips.Assemble(src); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

func TestBlackScholesSourceAssembles(t *testing.T) {
	src := BlackScholesSource(64, 16)
	if _, err := mips.Assemble(src); err != nil {
		t.Fatal(err)
	}
}

func TestCannonChecksumMatchesDirectProduct(t *testing.T) {
	// Recompute one block's checksum with a plain triple loop over the
	// full matrices and compare with CannonChecksum's formula.
	q, b := 2, 3
	n := q * b
	A := make([][]int64, n)
	B := make([][]int64, n)
	for r := 0; r < n; r++ {
		A[r] = make([]int64, n)
		B[r] = make([]int64, n)
		for c := 0; c < n; c++ {
			A[r][c] = int64(AElem(r, c))
			B[r][c] = int64(BElem(r, c))
		}
	}
	for row := 0; row < q; row++ {
		for col := 0; col < q; col++ {
			var want int64
			for bi := 0; bi < b; bi++ {
				for bj := 0; bj < b; bj++ {
					r, c := row*b+bi, col*b+bj
					var e int64
					for k := 0; k < n; k++ {
						e += A[r][k] * B[k][c]
					}
					want += e
				}
			}
			if got := CannonChecksum(row, col, q, b); got != want {
				t.Fatalf("block (%d,%d): checksum %d, want %d", row, col, got, want)
			}
		}
	}
}

func TestElementGeneratorsBounded(t *testing.T) {
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if v := AElem(r, c); v < 0 || v > 15 {
				t.Fatalf("AElem(%d,%d) = %d", r, c, v)
			}
			if v := BElem(r, c); v < 0 || v > 15 {
				t.Fatalf("BElem(%d,%d) = %d", r, c, v)
			}
		}
	}
}

package workloads

import (
	"fmt"
	"sort"
)

// Params is a kernel's integer parameter set. Kernels declare defaults
// and bounds; a nil map is equivalent to "all defaults". Go marshals
// maps with sorted keys, so a Params value embedded in a cache identity
// hashes deterministically.
type Params map[string]int64

// Get returns the parameter's value, or def when absent.
func (p Params) Get(key string, def int64) int64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Kernel describes one registered application kernel: how to validate
// its parameters against a platform and how to generate its MIPS source.
// The original three workloads (pingpong, shared-pingpong, cannon)
// predate the registry and keep their dedicated MipsSpec fields for
// wire compatibility; every kernel added since is registry-described.
type Kernel struct {
	// Name is the wire name ("reduction", "matmul-blocked", ...).
	Name string
	// Title is a one-line description for catalogues and docs.
	Title string
	// Shared marks kernels that run on the coherent-memory fabric
	// (config.memory required); private-memory kernels forbid it.
	Shared bool
	// Defaults hold the canonical value of every parameter the kernel
	// accepts; normalization folds them into the submitted Params so
	// equivalent submissions share one cache identity.
	Defaults Params
	// Validate checks a fully defaulted parameter set against the
	// platform's node count. It runs at submission time, so rejections
	// are 4xx responses, never mid-job failures.
	Validate func(p Params, nodes int) error
	// Source generates the kernel's MIPS assembly with the parameters
	// baked in (the repo-wide idiom: data as .word/.space constants).
	Source func(p Params, nodes int) string
}

// registry holds the registered kernels by wire name.
var registry = map[string]Kernel{}

// register adds a kernel at package init; duplicate names are
// programming errors.
func register(k Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("workloads: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
}

// Lookup returns the registered kernel for a wire name.
func Lookup(name string) (Kernel, bool) {
	k, ok := registry[name]
	return k, ok
}

// Names lists the registered kernel names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Normalize folds the kernel's defaults into p (nil allowed) and
// rejects parameters the kernel does not declare, so the canonical
// parameter set — and therefore the cache identity — is complete and
// closed under the kernel's schema.
func (k Kernel) Normalize(p Params) (Params, error) {
	out := make(Params, len(k.Defaults))
	for key, def := range k.Defaults {
		out[key] = def
	}
	for key, v := range p {
		if _, known := k.Defaults[key]; !known {
			return nil, fmt.Errorf("kernel %s takes no parameter %q (accepts %s)",
				k.Name, key, paramNames(k.Defaults))
		}
		out[key] = v
	}
	return out, nil
}

func paramNames(d Params) string {
	keys := make([]string, 0, len(d))
	for key := range d {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	s := ""
	for i, key := range keys {
		if i > 0 {
			s += ", "
		}
		s += key
	}
	return s
}

package workloads

import "fmt"

// The reduction kernel is a MiSaSiM-style multi-core tree reduction:
// every core computes a deterministic partial sum over its private
// element stream, then the partials combine pairwise up a binary tree —
// at each level the upper half of the surviving cores sends its partial
// one stride down (network DMA) and exits, until core 0 holds the total
// and prints it. It exercises the many-to-one traffic shape the
// ping-pong kernels cannot (log2(N) communication levels, N/2 messages
// at the first), and it scales to any power-of-two core count.

func init() {
	register(Kernel{
		Name:     "reduction",
		Title:    "binary-tree reduction of per-core partial sums",
		Defaults: Params{"elems": 64},
		Validate: func(p Params, nodes int) error {
			if nodes < 2 || nodes&(nodes-1) != 0 {
				return fmt.Errorf("reduction needs a power-of-two node count >= 2, topology has %d", nodes)
			}
			if e := p.Get("elems", 0); e < 1 || e > 1<<20 {
				return fmt.Errorf("reduction elems must be in [1, %d], got %d", 1<<20, e)
			}
			return nil
		},
		Source: func(p Params, nodes int) string {
			return ReductionSource(int(p.Get("elems", 64)))
		},
	})
}

// ReductionElem is the deterministic element stream: core id's k-th
// element. Go-side verification recomputes the reduced total from it.
func ReductionElem(id, k int) int32 { return int32((id*31 + k*7 + 1) & 0xFF) }

// ReductionChecksum is the total core 0 prints for a given machine:
// the wrap-around 32-bit sum of every core's elements.
func ReductionChecksum(nodes, elems int) int32 {
	var sum int32
	for id := 0; id < nodes; id++ {
		for k := 0; k < elems; k++ {
			sum += ReductionElem(id, k)
		}
	}
	return sum
}

// ReductionSource generates the MIPS source for the tree reduction with
// the per-core element count baked in.
func ReductionSource(elems int) string {
	return fmt.Sprintf(`# Binary-tree reduction, %d elements per core.
	.data
buf:	.space 4
	.text
main:
	li   $v0, 64
	syscall
	move $s0, $v0        # id
	li   $v0, 65
	syscall
	move $s1, $v0        # cores
	li   $s2, %d         # elems per core
	li   $s3, 0          # partial sum
	li   $t0, 0          # k
sum:
	mul  $t1, $s0, 31
	mul  $t2, $t0, 7
	addu $t1, $t1, $t2
	addiu $t1, $t1, 1
	andi $t1, $t1, 255
	addu $s3, $s3, $t1
	addiu $t0, $t0, 1
	blt  $t0, $s2, sum

	# Combine pairwise up the tree. At stride s, cores with
	# id mod 2s == s send their partial to id-s and exit; cores with
	# id mod 2s == 0 receive and fold it in, then double the stride.
	li   $s4, 1          # stride
tree:
	bge  $s4, $s1, root
	sll  $t3, $s4, 1
	addiu $t4, $t3, -1
	and  $t5, $s0, $t4   # id mod 2*stride (stride is a power of two)
	beq  $t5, $s4, send
	bnez $t5, idle
	addu $a0, $s0, $s4   # partner = id + stride
	la   $a1, buf
	li   $a2, 4
	li   $v0, 63         # blocking receive of the partner's partial
	syscall
	la   $t6, buf
	lw   $t7, 0($t6)
	addu $s3, $s3, $t7
	sll  $s4, $s4, 1
	b    tree

send:
	la   $t6, buf
	sw   $s3, 0($t6)
	subu $a0, $s0, $s4   # parent = id - stride
	la   $a1, buf
	li   $a2, 4
	li   $v0, 60
	syscall
idle:
	li   $v0, 10
	syscall

root:
	move $a0, $s3
	li   $v0, 1          # print the reduced total
	syscall
	li   $v0, 10
	syscall
`, elems, elems)
}

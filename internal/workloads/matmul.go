package workloads

import "fmt"

// The matmul-blocked kernel runs one independent n x n blocked matrix
// multiply per core — C += A x B in b x b blocks, the classic
// cache-blocking loop order — with per-core operands derived from the
// core ID, then gathers every core's C checksum at node 0 for a single
// printed total. Unlike cannon it places no constraint on the topology
// shape or node count, so it is the schema's "any machine" compute
// workload, with an all-to-one gather at the end.

func init() {
	register(Kernel{
		Name:     "matmul-blocked",
		Title:    "per-core blocked matrix multiply with checksum gather",
		Defaults: Params{"n": 8, "b": 4},
		Validate: func(p Params, nodes int) error {
			n, b := p.Get("n", 0), p.Get("b", 0)
			if n < 1 || n > 64 {
				return fmt.Errorf("matmul-blocked n must be in [1, 64], got %d", n)
			}
			if b < 1 || b > n {
				return fmt.Errorf("matmul-blocked b must be in [1, n], got %d", b)
			}
			if n%b != 0 {
				return fmt.Errorf("matmul-blocked block size %d must divide n = %d", b, n)
			}
			return nil
		},
		Source: func(p Params, nodes int) string {
			return MatmulBlockedSource(int(p.Get("n", 8)), int(p.Get("b", 4)))
		},
	})
}

// MatmulAElem and MatmulBElem define core id's deterministic operand
// matrices so Go-side verification can recompute the expected product.
func MatmulAElem(id, r, c int) int32 { return int32((3*r + 5*c + id + 1) & 0xF) }

// MatmulBElem is the second operand's entry generator.
func MatmulBElem(id, r, c int) int32 { return int32((7*r + 11*c + 2*id + 3) & 0xF) }

// MatmulChecksum is core id's expected C checksum: the wrap-around
// 32-bit sum over its n x n product matrix (independent of the block
// size — blocking only reorders associative additions).
func MatmulChecksum(id, n int) int32 {
	var sum int32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var e int32
			for k := 0; k < n; k++ {
				e += MatmulAElem(id, i, k) * MatmulBElem(id, k, j)
			}
			sum += e
		}
	}
	return sum
}

// MatmulTotal is the machine-wide total node 0 prints: every core's
// checksum folded together.
func MatmulTotal(nodes, n int) int32 {
	var sum int32
	for id := 0; id < nodes; id++ {
		sum += MatmulChecksum(id, n)
	}
	return sum
}

// MatmulBlockedSource generates the MIPS source for the per-core
// blocked multiply with n and b baked in.
func MatmulBlockedSource(n, b int) string {
	words := 4 * n * n
	return fmt.Sprintf(`# Blocked matrix multiply, %dx%d in %dx%d blocks, per-core operands.
	.data
matA:	.space %d
matB:	.space %d
matC:	.space %d
buf:	.space 4
	.text
main:
	li   $v0, 64
	syscall
	move $s0, $v0        # id
	li   $v0, 65
	syscall
	move $s1, $v0        # cores
	li   $s2, %d         # n
	li   $s3, %d         # b

	la   $a0, matA
	li   $a3, 0
	jal  genmat
	la   $a0, matB
	li   $a3, 1
	jal  genmat

	# zero C
	la   $t0, matC
	mul  $t1, $s2, $s2
zc:
	sw   $0, 0($t0)
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, zc

	# blocked C += A*B: block-origin loops (s4=i0, s5=j0, s6=k0)
	li   $s4, 0
bi0:
	li   $s5, 0
bj0:
	li   $s6, 0
bk0:
	jal  blockmm
	addu $s6, $s6, $s3
	blt  $s6, $s2, bk0
	addu $s5, $s5, $s3
	blt  $s5, $s2, bj0
	addu $s4, $s4, $s3
	blt  $s4, $s2, bi0

	# checksum C into s7
	la   $t0, matC
	mul  $t1, $s2, $s2
	li   $s7, 0
ck:
	lw   $t3, 0($t0)
	addu $s7, $s7, $t3
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, ck

	bnez $s0, leaf
	# node 0 gathers every other core's checksum, in core order
	li   $s4, 1
gather:
	bge  $s4, $s1, report
	move $a0, $s4
	la   $a1, buf
	li   $a2, 4
	li   $v0, 63
	syscall
	la   $t0, buf
	lw   $t1, 0($t0)
	addu $s7, $s7, $t1
	addiu $s4, $s4, 1
	b    gather
report:
	move $a0, $s7
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall

leaf:
	la   $t0, buf
	sw   $s7, 0($t0)
	li   $a0, 0
	la   $a1, buf
	li   $a2, 4
	li   $v0, 60
	syscall
	li   $v0, 10
	syscall

# genmat(a0=dst, a3=formula): fill n x n from the per-core element formulas
#   A: (3r + 5c + id + 1) & 15      B: (7r + 11c + 2*id + 3) & 15
genmat:
	li   $t0, 0          # r
gm_r:
	li   $t1, 0          # c
gm_c:
	bnez $a3, gm_b
	mul  $t2, $t0, 3
	mul  $t3, $t1, 5
	addu $t2, $t2, $t3
	addu $t2, $t2, $s0
	addiu $t2, $t2, 1
	b    gm_store
gm_b:
	mul  $t2, $t0, 7
	mul  $t3, $t1, 11
	addu $t2, $t2, $t3
	addu $t2, $t2, $s0
	addu $t2, $t2, $s0
	addiu $t2, $t2, 3
gm_store:
	andi $t2, $t2, 15
	mul  $t3, $t0, $s2
	addu $t3, $t3, $t1
	sll  $t3, $t3, 2
	addu $t3, $t3, $a0
	sw   $t2, 0($t3)
	addiu $t1, $t1, 1
	blt  $t1, $s2, gm_c
	addiu $t0, $t0, 1
	blt  $t0, $s2, gm_r
	jr   $ra

# blockmm: C[i0:i0+b, j0:j0+b] += A[i0:i0+b, k0:k0+b] x B[k0:k0+b, j0:j0+b]
blockmm:
	li   $t0, 0          # i
bm_i:
	li   $t1, 0          # j
bm_j:
	li   $t2, 0          # k
	li   $t3, 0          # acc
bm_k:
	addu $t4, $s4, $t0   # r = i0 + i
	mul  $t4, $t4, $s2
	addu $t5, $s6, $t2   # k0 + k
	addu $t4, $t4, $t5
	sll  $t4, $t4, 2
	la   $t6, matA
	addu $t4, $t4, $t6
	lw   $t4, 0($t4)     # A[r][k0+k]
	addu $t5, $s6, $t2
	mul  $t5, $t5, $s2
	addu $t6, $s5, $t1   # c = j0 + j
	addu $t5, $t5, $t6
	sll  $t5, $t5, 2
	la   $t6, matB
	addu $t5, $t5, $t6
	lw   $t5, 0($t5)     # B[k0+k][c]
	mul  $t4, $t4, $t5
	addu $t3, $t3, $t4
	addiu $t2, $t2, 1
	blt  $t2, $s3, bm_k
	# C[r][c] += acc
	addu $t4, $s4, $t0
	mul  $t4, $t4, $s2
	addu $t5, $s5, $t1
	addu $t4, $t4, $t5
	sll  $t4, $t4, 2
	la   $t5, matC
	addu $t4, $t4, $t5
	lw   $t5, 0($t4)
	addu $t5, $t5, $t3
	sw   $t5, 0($t4)
	addiu $t1, $t1, 1
	blt  $t1, $s3, bm_j
	addiu $t0, $t0, 1
	blt  $t0, $s3, bm_i
	jr   $ra
`, n, n, b, b, words, words, words, n, b)
}

// Package workloads contains the MIPS application kernels the paper's
// evaluation runs on the built-in core model: Cannon's matrix-multiply
// (message passing, Fig 12) and a fixed-point Black-Scholes kernel
// standing in for PARSEC BLACKSCHOLES (Fig 6a). Sources are generated
// with parameters baked in as .word constants and assembled by the
// built-in assembler.
package workloads

import (
	"fmt"
	"strings"
)

// AElem and BElem define the deterministic matrix entries so Go-side
// verification can recompute the expected product.
func AElem(r, c int) int32 { return int32((r*3 + c*5 + 1) & 0xF) }

// BElem is the second operand's entry generator.
func BElem(r, c int) int32 { return int32((r*7 + c*11 + 3) & 0xF) }

// CannonChecksum computes the expected per-core checksum of C's block at
// grid position (row, col) for a q x q grid of bxb blocks: the sum over
// the block of (A x B)(r, c).
func CannonChecksum(row, col, q, b int) int64 {
	n := q * b
	var sum int64
	for bi := 0; bi < b; bi++ {
		for bj := 0; bj < b; bj++ {
			r := row*b + bi
			c := col*b + bj
			var e int64
			for k := 0; k < n; k++ {
				e += int64(AElem(r, k)) * int64(BElem(k, c))
			}
			sum += e
		}
	}
	return sum
}

// CannonSource generates the MIPS source for Cannon's algorithm on a
// q x q core grid with b x b blocks per core (paper §IV-D: C with
// message passing targeting the MIPS core simulator). Each core:
//
//  1. derives its grid position from its node ID;
//  2. generates its pre-aligned A and B blocks from the global element
//     formulas (Cannon's initial skew folded into block coordinates);
//  3. runs q rounds of C += A*B, passing A west and B north between
//     rounds with the DMA send syscall and blocking receives;
//  4. prints the checksum of its C block and exits with status 0.
func CannonSource(q, b int) string {
	var s strings.Builder
	fmt.Fprintf(&s, `# Cannon's algorithm, %dx%d grid, %dx%d blocks per core.
	.data
params:
Q:	.word %d
B:	.word %d
blkA:	.space %d
blkB:	.space %d
blkC:	.space %d
bufA:	.space %d
bufB:	.space %d
	.text
`, q, q, b, b, q, b, 4*b*b, 4*b*b, 4*b*b, 4*b*b, 4*b*b)
	s.WriteString(`
main:
	li   $v0, 64          # my node id
	syscall
	move $s0, $v0         # s0 = id
	la   $t0, Q
	lw   $s1, 0($t0)      # s1 = q
	la   $t0, B
	lw   $s2, 0($t0)      # s2 = b
	divu $s0, $s1
	mflo $s3              # s3 = row
	mfhi $s4              # s4 = col

	# Block coordinates after Cannon's initial skew:
	#   A block = (row, (row+col) mod q), B block = ((row+col) mod q, col)
	addu $t0, $s3, $s4
	divu $t0, $s1
	mfhi $s5              # s5 = (row+col) mod q

	# ---- generate A block: element(r,c) = (3r + 5c + 1) & 15
	la   $a0, blkA
	move $a1, $s3         # block row = row
	move $a2, $s5         # block col = skew
	li   $a3, 0           # selector 0 => A formula
	jal  genblock
	# ---- generate B block: element(r,c) = (7r + 11c + 3) & 15
	la   $a0, blkB
	move $a1, $s5
	move $a2, $s4
	li   $a3, 1
	jal  genblock

	# ---- zero C
	la   $t0, blkC
	mul  $t1, $s2, $s2
zeroC:
	sw   $0, 0($t0)
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, zeroC

	# s6 = current round
	li   $s6, 0
rounds:
	jal  matmul           # blkC += blkA * blkB

	addiu $t0, $s1, -1
	beq  $s6, $t0, done_rounds

	# send A west: dst = row*q + (col-1+q)%q
	addiu $t1, $s4, -1
	addu  $t1, $t1, $s1
	divu  $t1, $s1
	mfhi  $t1
	mul   $t2, $s3, $s1
	addu  $a0, $t2, $t1
	la    $a1, blkA
	mul   $a2, $s2, $s2
	sll   $a2, $a2, 2
	li    $v0, 60
	syscall

	# send B north: dst = ((row-1+q)%q)*q + col
	addiu $t1, $s3, -1
	addu  $t1, $t1, $s1
	divu  $t1, $s1
	mfhi  $t1
	mul   $t2, $t1, $s1
	addu  $a0, $t2, $s4
	la    $a1, blkB
	mul   $a2, $s2, $s2
	sll   $a2, $a2, 2
	li    $v0, 60
	syscall

	# recv A from east: src = row*q + (col+1)%q
	addiu $t1, $s4, 1
	divu  $t1, $s1
	mfhi  $t1
	mul   $t2, $s3, $s1
	addu  $a0, $t2, $t1
	la    $a1, bufA
	mul   $a2, $s2, $s2
	sll   $a2, $a2, 2
	li    $v0, 63
	syscall

	# recv B from south: src = ((row+1)%q)*q + col
	addiu $t1, $s3, 1
	divu  $t1, $s1
	mfhi  $t1
	mul   $t2, $t1, $s1
	addu  $a0, $t2, $s4
	la    $a1, bufB
	mul   $a2, $s2, $s2
	sll   $a2, $a2, 2
	li    $v0, 63
	syscall

	# copy buffers into working blocks
	la   $a0, blkA
	la   $a1, bufA
	jal  copyblk
	la   $a0, blkB
	la   $a1, bufB
	jal  copyblk

	addiu $s6, $s6, 1
	b    rounds

done_rounds:
	# checksum C and print it
	la   $t0, blkC
	mul  $t1, $s2, $s2
	li   $t2, 0
cksum:
	lw   $t3, 0($t0)
	addu $t2, $t2, $t3
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, cksum
	move $a0, $t2
	li   $v0, 1
	syscall
	li   $a0, 0
	li   $v0, 10
	syscall

# genblock(a0=dst, a1=blockRow, a2=blockCol, a3=formula) clobbers t*
genblock:
	li   $t0, 0           # bi
gb_row:
	li   $t1, 0           # bj
gb_col:
	mul  $t2, $a1, $s2
	addu $t2, $t2, $t0    # r = blockRow*b + bi
	mul  $t3, $a2, $s2
	addu $t3, $t3, $t1    # c = blockCol*b + bj
	bnez $a3, gb_formB
	# A: (3r + 5c + 1) & 15
	mul  $t4, $t2, 3
	mul  $t5, $t3, 5
	addu $t4, $t4, $t5
	addiu $t4, $t4, 1
	b    gb_store
gb_formB:
	# B: (7r + 11c + 3) & 15
	mul  $t4, $t2, 7
	mul  $t5, $t3, 11
	addu $t4, $t4, $t5
	addiu $t4, $t4, 3
gb_store:
	andi $t4, $t4, 15
	mul  $t5, $t0, $s2
	addu $t5, $t5, $t1
	sll  $t5, $t5, 2
	addu $t5, $t5, $a0
	sw   $t4, 0($t5)
	addiu $t1, $t1, 1
	blt  $t1, $s2, gb_col
	addiu $t0, $t0, 1
	blt  $t0, $s2, gb_row
	jr   $ra

# matmul: blkC += blkA x blkB (b x b), clobbers t*
matmul:
	li   $t0, 0           # i
mm_i:
	li   $t1, 0           # j
mm_j:
	li   $t2, 0           # k
	li   $t3, 0           # acc
mm_k:
	# acc += A[i*b+k] * B[k*b+j]
	mul  $t4, $t0, $s2
	addu $t4, $t4, $t2
	sll  $t4, $t4, 2
	la   $t5, blkA
	addu $t4, $t4, $t5
	lw   $t4, 0($t4)
	mul  $t5, $t2, $s2
	addu $t5, $t5, $t1
	sll  $t5, $t5, 2
	la   $t6, blkB
	addu $t5, $t5, $t6
	lw   $t5, 0($t5)
	mul  $t4, $t4, $t5
	addu $t3, $t3, $t4
	addiu $t2, $t2, 1
	blt  $t2, $s2, mm_k
	# C[i*b+j] += acc
	mul  $t4, $t0, $s2
	addu $t4, $t4, $t1
	sll  $t4, $t4, 2
	la   $t5, blkC
	addu $t4, $t4, $t5
	lw   $t5, 0($t4)
	addu $t5, $t5, $t3
	sw   $t5, 0($t4)
	addiu $t1, $t1, 1
	blt  $t1, $s2, mm_j
	addiu $t0, $t0, 1
	blt  $t0, $s2, mm_i
	jr   $ra

# copyblk(a0=dst, a1=src): copy b*b words
copyblk:
	mul  $t0, $s2, $s2
cb_loop:
	lw   $t1, 0($a1)
	sw   $t1, 0($a0)
	addiu $a0, $a0, 4
	addiu $a1, $a1, 4
	addiu $t0, $t0, -1
	bgtz $t0, cb_loop
	jr   $ra
`)
	return s.String()
}

package workloads

import "fmt"

// The original three kernels predate the registry: their wire format
// (MipsSpec's dedicated rounds/q/b fields) is frozen for cache-identity
// compatibility, but they register here like every other kernel so the
// scenario schema, validation, and source generation all flow through
// one table. Their parameter names mirror the legacy fields.

func init() {
	register(Kernel{
		Name:     "pingpong",
		Title:    "MPI-style DMA ping-pong between the corner cores",
		Defaults: Params{"rounds": 100},
		Validate: func(p Params, nodes int) error {
			if err := checkRounds(p); err != nil {
				return err
			}
			if nodes < 2 {
				return fmt.Errorf("ping-pong workloads need at least 2 nodes")
			}
			return nil
		},
		Source: func(p Params, nodes int) string {
			return PingPongSource(int(p.Get("rounds", 100)))
		},
	})
	register(Kernel{
		Name:     "shared-pingpong",
		Title:    "ping-pong hand-off through the coherent-memory fabric",
		Shared:   true,
		Defaults: Params{"rounds": 100},
		Validate: func(p Params, nodes int) error {
			if err := checkRounds(p); err != nil {
				return err
			}
			if nodes < 2 {
				return fmt.Errorf("ping-pong workloads need at least 2 nodes")
			}
			return nil
		},
		Source: func(p Params, nodes int) string {
			return SharedPingPongSource(int(p.Get("rounds", 100)), nodes-1)
		},
	})
	register(Kernel{
		Name:     "cannon",
		Title:    "Cannon's matrix multiply with message passing",
		Defaults: Params{"q": 2, "b": 4},
		Validate: func(p Params, nodes int) error {
			q, b := int(p.Get("q", 2)), int(p.Get("b", 4))
			if q < 1 || q > 64 || b < 1 || b > 64 {
				return fmt.Errorf("cannon q and b must be in [1, 64]")
			}
			if nodes != q*q {
				return fmt.Errorf("cannon on a %dx%d grid needs exactly %d nodes, topology has %d",
					q, q, q*q, nodes)
			}
			return nil
		},
		Source: func(p Params, nodes int) string {
			return CannonSource(int(p.Get("q", 2)), int(p.Get("b", 4)))
		},
	})
}

func checkRounds(p Params) error {
	if r := p.Get("rounds", 100); r < 1 || r > 1_000_000 {
		return fmt.Errorf("rounds must be in [1, 1000000], got %d", r)
	}
	return nil
}

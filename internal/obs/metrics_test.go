package obs

import (
	"strings"
	"testing"
	"time"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hornet_things_total", "Things that happened.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("hornet_level", "Current level.")
	g.Set(1.5)
	g.Add(-0.25)
	r.CounterFunc("hornet_live_total", "Live-read counter.", func() uint64 { return 42 })
	r.GaugeFunc("hornet_live_level", "Live-read gauge.", func() float64 { return 7 })

	out := expose(t, r)
	for _, want := range []string{
		"# HELP hornet_things_total Things that happened.\n# TYPE hornet_things_total counter\nhornet_things_total 3\n",
		"# TYPE hornet_level gauge\nhornet_level 1.25\n",
		"hornet_live_total 42\n",
		"hornet_live_level 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	// Registered out of order: exposition must sort families by name
	// and series by rendered label set.
	r.Counter("zzz_total", "Last family.").Inc()
	r.Counter("aaa_total", "First family.", L("state", "running")).Add(2)
	r.Counter("aaa_total", "First family.", L("state", "done")).Add(1)
	r.Counter("esc_total", `Help with backslash \ inside.`,
		L("path", `C:\dir`), L("msg", "a \"quoted\"\nline")).Inc()

	out := expose(t, r)
	ia := strings.Index(out, "# TYPE aaa_total")
	iz := strings.Index(out, "# TYPE zzz_total")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("families not sorted (aaa at %d, zzz at %d):\n%s", ia, iz, out)
	}
	done := strings.Index(out, `aaa_total{state="done"} 1`)
	running := strings.Index(out, `aaa_total{state="running"} 2`)
	if done < 0 || running < 0 || done > running {
		t.Fatalf("series not sorted by label set:\n%s", out)
	}
	if !strings.Contains(out, `# HELP esc_total Help with backslash \\ inside.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="C:\\dir",msg="a \"quoted\"\nline"} 1`) {
		t.Errorf("label values not escaped:\n%s", out)
	}
	// Idempotent registration: same name+labels returns the same
	// instrument, not a second series.
	c := r.Counter("aaa_total", "First family.", L("state", "done"))
	c.Inc()
	if got := expose(t, r); !strings.Contains(got, `aaa_total{state="done"} 2`) {
		t.Errorf("re-registration created a new series:\n%s", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hornet_lat_seconds", "Latency.", []float64{0.1, 1, 10}, L("route", "/x"))
	// Exactly-representable values so the _sum renders predictably.
	for _, v := range []float64{0.0625, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE hornet_lat_seconds histogram\n",
		`hornet_lat_seconds_bucket{route="/x",le="0.1"} 1`,
		`hornet_lat_seconds_bucket{route="/x",le="1"} 3`,
		`hornet_lat_seconds_bucket{route="/x",le="10"} 4`,
		`hornet_lat_seconds_bucket{route="/x",le="+Inf"} 5`,
		`hornet_lat_seconds_sum{route="/x"} 56.0625`,
		`hornet_lat_seconds_count{route="/x"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	h.ObserveDuration(10 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("Count after ObserveDuration = %d, want 6", h.Count())
	}
}

func TestDeterministicOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "B.", L("x", "1")).Inc()
	r.Counter("a_total", "A.").Inc()
	r.Gauge("m_gauge", "M.", L("k", "v")).Set(3)
	first := expose(t, r)
	for i := 0; i < 5; i++ {
		if got := expose(t, r); got != first {
			t.Fatalf("exposition not deterministic:\n--- first\n%s\n--- run %d\n%s", first, i, got)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "C.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("dual_total", "G.")
}

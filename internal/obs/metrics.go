package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a hand-rolled metrics registry exposing the Prometheus
// text format (version 0.0.4). It supports counters, gauges and
// histograms, each optionally labelled, plus Func variants that read a
// live value at scrape time — those are how the registry stays the
// single source of truth for state the server already tracks (job
// counts, budget occupancy, fleet counters) without double-counting.
//
// Registration is idempotent: asking for the same name+labels returns
// the existing instrument. Mixing types under one name panics — that
// is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Label is one name=value metric label.
type Label struct{ Name, Value string }

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets mirrors the classic Prometheus duration buckets (seconds).
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// SizeBuckets is a byte-size bucket ladder for blob/upload histograms.
var SizeBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}

type family struct {
	name, help, typ string
	series          map[string]instrument // key: rendered label set
}

type instrument interface {
	// write emits the sample lines for one series. fqName is the family
	// name, labels the pre-rendered label set ("" or `{a="b"}`).
	write(w *bufio.Writer, fqName, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]instrument)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (r *Registry) register(name, help, typ string, labels []Label, mk func() instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	key := renderLabels(labels)
	if inst, ok := f.series[key]; ok {
		return inst
	}
	inst := mk()
	f.series[key] = inst
	return inst
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

type counterFunc struct{ fn func() uint64 }

func (c counterFunc) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.fn())
}

// CounterFunc registers a counter whose value is read at scrape time.
// fn must be safe to call from any goroutine and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, "counter", labels, func() instrument { return counterFunc{fn} })
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, "gauge", labels, func() instrument { return &Gauge{} }).(*Gauge)
}

type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func() instrument { return gaugeFunc{fn} })
}

// GaugeSample is one series emitted by a GaugeSetFunc at scrape time.
type GaugeSample struct {
	Labels []Label
	Value  float64
}

type gaugeSetFunc struct{ fn func() []GaugeSample }

func (g gaugeSetFunc) write(w *bufio.Writer, name, labels string) {
	samples := g.fn()
	rows := make([]string, 0, len(samples))
	for _, s := range samples {
		rows = append(rows, renderLabels(s.Labels)+" "+formatFloat(s.Value))
	}
	sort.Strings(rows)
	for _, row := range rows {
		fmt.Fprintf(w, "%s%s\n", name, row)
	}
}

// GaugeSetFunc registers a gauge family whose entire series set is
// produced fresh at each scrape: fn returns one sample per series, and
// series may come and go between scrapes. The fixed instruments never
// forget a label set once registered; this variant exists for
// inherently dynamic sets (e.g. the hottest links of currently running
// jobs). fn must not return duplicate label sets.
func (r *Registry) GaugeSetFunc(name, help string, fn func() []GaugeSample) {
	r.register(name, help, "gauge", nil, func() instrument { return gaugeSetFunc{fn} })
}

// Histogram counts observations into cumulative buckets, Prometheus
// style. Observe is lock-free (atomics only) so it is safe on warmish
// paths; the bucket search is a linear scan over a small ladder.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) write(w *bufio.Writer, name, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds (ascending; nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, "histogram", labels, func() instrument {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Uint64, len(bounds))
		return h
	}).(*Histogram)
}

// WritePrometheus writes every registered family in the text
// exposition format, families and series in deterministic sorted
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; values are
	// read outside it (instruments are internally synchronized, and
	// Func instruments may take component locks we must not hold r.mu
	// across).
	type seriesRow struct {
		labels string
		inst   instrument
	}
	type famRow struct {
		name, help, typ string
		rows            []seriesRow
	}
	fams := make([]famRow, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fr := famRow{name: f.name, help: f.help, typ: f.typ}
		for _, k := range keys {
			fr.rows = append(fr.rows, seriesRow{labels: k, inst: f.series[k]})
		}
		fams = append(fams, fr)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, row := range f.rows {
			row.inst.write(bw, f.name, row.labels)
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition format; mount
// it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// renderLabels renders a label set as `{a="b",c="d"}` with escaped
// values, or "" for no labels. Label order is the caller's; callers
// use consistent ordering per instrument so the rendered key is
// stable.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// bucketLabels splices le="bound" into an existing rendered label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

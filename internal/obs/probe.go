package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SimProbe collects engine-level timing: total cycles and wall time
// (cycles/sec), per-partition compute vs. barrier-wait time, and the
// round-trip latency of shard coupler syncs. A probe is attached to an
// engine with Engine.SetProbe; a nil probe costs the engine exactly
// one predictable branch per phase and zero allocations.
//
// All counters are cumulative across runs so chunked (checkpointing)
// executions aggregate naturally; Snapshot renders a consistent-enough
// view for live reporting (fields are individually atomic).
type SimProbe struct {
	runs    atomic.Uint64
	cycles  atomic.Uint64
	skipped atomic.Uint64
	wallNS  atomic.Int64

	syncCalls atomic.Uint64
	syncNS    atomic.Int64

	mu    sync.Mutex
	parts []*PartitionProbe
}

// PartitionProbe accumulates one engine worker's timing split. The
// engine holds the pointer for a whole run, so per-cycle updates are
// two atomic adds, no map lookups and no allocation.
type PartitionProbe struct {
	lo, hi    int
	cycles    atomic.Uint64
	computeNS atomic.Int64
	barrierNS atomic.Int64
}

// AddCompute, AddBarrier and AddCycles are the engine-side recording
// hooks.
func (p *PartitionProbe) AddCompute(d time.Duration) { p.computeNS.Add(int64(d)) }
func (p *PartitionProbe) AddBarrier(d time.Duration) { p.barrierNS.Add(int64(d)) }
func (p *PartitionProbe) AddCycles(n uint64)         { p.cycles.Add(n) }

// NewSimProbe returns an empty probe.
func NewSimProbe() *SimProbe { return &SimProbe{} }

// Partition returns the accumulator for engine worker w of n, owning
// tiles [lo,hi). Called once per worker per Run (not per cycle); the
// slice grows lazily and accumulators persist across runs.
func (p *SimProbe) Partition(w, n, lo, hi int) *PartitionProbe {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.parts) < n {
		p.parts = append(p.parts, &PartitionProbe{})
	}
	pp := p.parts[w]
	pp.lo, pp.hi = lo, hi
	return pp
}

// RunDone folds one Engine.Run result into the probe.
func (p *SimProbe) RunDone(cycles, skipped uint64, wall time.Duration) {
	p.runs.Add(1)
	p.cycles.Add(cycles)
	p.skipped.Add(skipped)
	p.wallNS.Add(int64(wall))
}

// ShardSync records one shard coupler round-trip.
func (p *SimProbe) ShardSync(d time.Duration) {
	p.syncCalls.Add(1)
	p.syncNS.Add(int64(d))
}

// ProbeSnapshot is a point-in-time rendering of a SimProbe, embedded
// in JobInfo and SSE "engine" events and pushed over the fleet wire.
type ProbeSnapshot struct {
	Runs          uint64  `json:"runs"`
	Cycles        uint64  `json:"cycles"`
	SkippedCycles uint64  `json:"skipped_cycles,omitempty"`
	WallMS        float64 `json:"wall_ms"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`

	ShardSyncs      uint64  `json:"shard_syncs,omitempty"`
	ShardSyncWallMS float64 `json:"shard_sync_wall_ms,omitempty"`

	Partitions []PartitionSnapshot `json:"partitions,omitempty"`
}

// PartitionSnapshot is one worker's share of a ProbeSnapshot.
type PartitionSnapshot struct {
	Worker    int     `json:"worker"`
	TileLo    int     `json:"tile_lo"`
	TileHi    int     `json:"tile_hi"`
	Cycles    uint64  `json:"cycles"`
	ComputeMS float64 `json:"compute_ms"`
	BarrierMS float64 `json:"barrier_ms"`
}

// Snapshot renders the probe's current totals.
func (p *SimProbe) Snapshot() ProbeSnapshot {
	s := ProbeSnapshot{
		Runs:          p.runs.Load(),
		Cycles:        p.cycles.Load(),
		SkippedCycles: p.skipped.Load(),
		WallMS:        float64(p.wallNS.Load()) / 1e6,
		ShardSyncs:    p.syncCalls.Load(),
	}
	s.ShardSyncWallMS = float64(p.syncNS.Load()) / 1e6
	if wall := p.wallNS.Load(); wall > 0 {
		s.CyclesPerSec = float64(s.Cycles) / (float64(wall) / 1e9)
	}
	// Hold mu across the iteration: pp.lo/hi are plain ints written by
	// Partition under the same lock.
	p.mu.Lock()
	defer p.mu.Unlock()
	for w, pp := range p.parts {
		s.Partitions = append(s.Partitions, PartitionSnapshot{
			Worker:    w,
			TileLo:    pp.lo,
			TileHi:    pp.hi,
			Cycles:    pp.cycles.Load(),
			ComputeMS: float64(pp.computeNS.Load()) / 1e6,
			BarrierMS: float64(pp.barrierNS.Load()) / 1e6,
		})
	}
	return s
}

// BarrierWallMS sums barrier-wait time across partitions; ComputeWallMS
// likewise for compute. Convenient for histogram deltas.
func (s ProbeSnapshot) BarrierWallMS() float64 {
	var t float64
	for _, p := range s.Partitions {
		t += p.BarrierMS
	}
	return t
}

// ComputeWallMS sums compute time across partitions.
func (s ProbeSnapshot) ComputeWallMS() float64 {
	var t float64
	for _, p := range s.Partitions {
		t += p.ComputeMS
	}
	return t
}

package obs

import (
	"reflect"
	"testing"
)

func shardSample(shard, count, lo, hi int, cycle uint64) TelemetrySnapshot {
	s := TelemetrySnapshot{
		Cycle: cycle, Shard: shard, ShardCount: count, TileLo: lo, TileHi: hi,
	}
	for t := lo; t < hi; t++ {
		s.Tiles = append(s.Tiles, TileTelemetry{
			Tile: t, FlitsInjected: uint64(10 * (t + 1)), FlitsDelivered: uint64(9 * (t + 1)),
		})
		s.Links = append(s.Links, LinkTelemetry{From: t, To: t + 1, Occupancy: t % 3, Capacity: 8})
	}
	return s
}

// MergeTelemetry must present disjoint member spans as one full-machine
// view: union span, min cycle, concatenated-and-sorted tiles/links,
// Shard == -1, regardless of part order.
func TestMergeTelemetry(t *testing.T) {
	a := shardSample(0, 2, 0, 4, 1_000)
	b := shardSample(1, 2, 4, 8, 900) // member b lags: machine is coherent at 900

	for _, parts := range [][]TelemetrySnapshot{{a, b}, {b, a}} {
		m := MergeTelemetry(parts)
		if m.Shard != -1 || m.ShardCount != 2 {
			t.Fatalf("merged shard identity = %d/%d, want -1/2", m.Shard, m.ShardCount)
		}
		if m.Cycle != 900 {
			t.Errorf("merged cycle = %d, want min member cycle 900", m.Cycle)
		}
		if m.TileLo != 0 || m.TileHi != 8 {
			t.Errorf("merged span = [%d,%d), want [0,8)", m.TileLo, m.TileHi)
		}
		if len(m.Tiles) != 8 || len(m.Links) != 8 {
			t.Fatalf("merged sizes: %d tiles, %d links, want 8/8", len(m.Tiles), len(m.Links))
		}
		for i, tile := range m.Tiles {
			if tile.Tile != i {
				t.Fatalf("merged tiles not sorted: index %d holds tile %d", i, tile.Tile)
			}
		}
		if got, want := m.FlitsInjected(), a.FlitsInjected()+b.FlitsInjected(); got != want {
			t.Errorf("merged injected = %d, want %d", got, want)
		}
		if got, want := m.BufferedFlits(), a.BufferedFlits()+b.BufferedFlits(); got != want {
			t.Errorf("merged buffered = %d, want %d", got, want)
		}
	}

	// Degenerate cases: no parts is an empty merged view; one unsharded
	// part passes through untouched.
	if m := MergeTelemetry(nil); m.Shard != -1 || len(m.Tiles) != 0 {
		t.Errorf("empty merge = %+v", m)
	}
	solo := shardSample(0, 1, 0, 4, 50)
	if m := MergeTelemetry([]TelemetrySnapshot{solo}); !reflect.DeepEqual(m, solo) {
		t.Errorf("single unsharded part was rewritten: %+v", m)
	}
}

// TopLinks must order by occupancy descending with a deterministic
// (From, To) tie-break, and clamp to the available links.
func TestTopLinks(t *testing.T) {
	s := TelemetrySnapshot{Links: []LinkTelemetry{
		{From: 3, To: 4, Occupancy: 1},
		{From: 0, To: 1, Occupancy: 5},
		{From: 2, To: 1, Occupancy: 5},
		{From: 1, To: 2, Occupancy: 0},
	}}
	top := s.TopLinks(3)
	want := []LinkTelemetry{
		{From: 0, To: 1, Occupancy: 5},
		{From: 2, To: 1, Occupancy: 5},
		{From: 3, To: 4, Occupancy: 1},
	}
	if !reflect.DeepEqual(top, want) {
		t.Errorf("TopLinks(3) = %+v, want %+v", top, want)
	}
	if got := s.TopLinks(10); len(got) != 4 {
		t.Errorf("TopLinks(10) returned %d links, want all 4", len(got))
	}
	if len(s.TopLinks(0)) != 0 {
		t.Errorf("TopLinks(0) returned links")
	}
	// The input order must not be disturbed (TopLinks copies).
	if s.Links[0].From != 3 {
		t.Errorf("TopLinks mutated the snapshot's link order")
	}
}

package obs

import (
	"strconv"
	"sync"
	"time"
)

// Timeline accumulates span and instant events for one job's lifetime
// (queued → dispatched → running → checkpoint → migrated/rollback →
// done) and renders them as Chrome trace_event JSON, loadable directly
// in Perfetto or chrome://tracing.
//
// Timeline has its own mutex and never calls out while holding it, so
// it is safe to record events from under any component lock (the fleet
// notes dispatch/requeue while holding its own mutex).
type Timeline struct {
	mu      sync.Mutex
	name    string
	base    time.Time
	events  []TraceEvent
	open    map[string]int // span name -> index of pending "X" event
	max     int
	dropped int
}

// TraceEvent is one Chrome trace_event entry. Phase "X" is a complete
// span (Ts + Dur), "B" an unfinished span begin, "i" an instant, "C" a
// counter sample (Perfetto renders a counter track per arg key), "M"
// metadata. Timestamps are microseconds from the timeline base. Args
// values are strings on span/instant events and numbers on counters.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceDocument is the JSON object served by GET /api/v1/jobs/{id}/trace.
type TraceDocument struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const defaultTimelineCap = 512

// NewTimeline starts a timeline named name (the Perfetto process
// label) with its zero timestamp at start.
func NewTimeline(name string, start time.Time) *Timeline {
	return &Timeline{
		name: name,
		base: start,
		open: make(map[string]int),
		max:  defaultTimelineCap,
	}
}

// SetCap overrides the event cap (<= 0 keeps the default). Events past
// the cap are dropped and counted; see Dropped.
func (t *Timeline) SetCap(n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.max = n
}

// Dropped reports how many events the cap has discarded so far.
func (t *Timeline) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *Timeline) ts(at time.Time) int64 { return at.Sub(t.base).Microseconds() }

// stringArgs widens a span/instant arg map to the event's storage type.
func stringArgs(args map[string]string) map[string]any {
	if len(args) == 0 {
		return nil
	}
	out := make(map[string]any, len(args))
	for k, v := range args {
		out[k] = v
	}
	return out
}

// Begin opens a span. A span already open under the same name is left
// as is (Begin is idempotent until End).
func (t *Timeline) Begin(name string, args map[string]string) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.open[name]; ok {
		return
	}
	if !t.roomLocked() {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "B", Ts: t.ts(now), Pid: 1, Tid: 1, Args: stringArgs(args),
	})
	t.open[name] = len(t.events) - 1
}

// End closes the span opened by Begin(name), converting it to a
// complete ("X") event; extra args are merged in. No-op when the span
// is not open.
func (t *Timeline) End(name string, args map[string]string) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.open[name]
	if !ok {
		return
	}
	delete(t.open, name)
	ev := &t.events[i]
	ev.Phase = "X"
	ev.Dur = t.ts(now) - ev.Ts
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	if len(args) > 0 {
		if ev.Args == nil {
			ev.Args = make(map[string]any, len(args))
		}
		for k, v := range args {
			ev.Args[k] = v
		}
	}
}

// Instant records a point event.
func (t *Timeline) Instant(name string, args map[string]string) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.roomLocked() {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "i", Ts: t.ts(now), Pid: 1, Tid: 1, Scope: "p", Args: stringArgs(args),
	})
}

// Counter records a counter-track sample ("C" phase): Perfetto draws
// one stacked track named name with a series per value key, next to
// the job's spans. Values must be numbers, hence the separate arg type.
func (t *Timeline) Counter(name string, values map[string]float64) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(values) == 0 || !t.roomLocked() {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "C", Ts: t.ts(now), Pid: 1, Tid: 1, Args: args,
	})
}

// roomLocked enforces the event cap so a pathological job (checkpoint
// storm, rollback loop) cannot grow the timeline without bound.
func (t *Timeline) roomLocked() bool {
	if len(t.events) >= t.max {
		t.dropped++
		return false
	}
	return true
}

// Document renders the timeline. Spans still open are emitted as "B"
// events, which Perfetto draws as unfinished; the trace is therefore
// valid at any point in the job's life.
func (t *Timeline) Document() TraceDocument {
	t.mu.Lock()
	defer t.mu.Unlock()
	events := make([]TraceEvent, 0, len(t.events)+1)
	events = append(events, TraceEvent{
		Name: "process_name", Phase: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": t.name},
	})
	events = append(events, t.events...)
	doc := TraceDocument{TraceEvents: events, DisplayTimeUnit: "ms"}
	if t.dropped > 0 {
		doc.OtherData = map[string]string{"dropped_events": strconv.Itoa(t.dropped)}
	}
	return doc
}

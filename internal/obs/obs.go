// Package obs is hornet's dependency-free observability layer:
// structured logging conventions on top of log/slog, a hand-rolled
// metrics registry with Prometheus text exposition, a cycle-level
// engine probe (cycles/sec, per-partition barrier-wait vs. compute,
// shard sync round-trips), and per-job trace timelines exported as
// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing).
//
// Everything here is stdlib-only by design: the simulator links no
// third-party code, and the engine hot path must stay allocation-free
// when no probe is attached.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Shared attribute keys: every component logs the same names so one
// grep ("job=job-000007") follows a job across coordinator, fleet and
// worker logs.
const (
	KeyComponent = "component"
	KeyJob       = "job"
	KeyTask      = "task"
	KeyWorker    = "worker"
	KeyShard     = "shard"
)

// Component tags a logger with the subsystem name ("scheduler",
// "fleet", "worker", ...). Use once at construction, not per call.
func Component(l *slog.Logger, name string) *slog.Logger {
	return l.With(slog.String(KeyComponent, name))
}

// Job, Task, Worker and Shard build the shared convention attrs.
func Job(id string) slog.Attr    { return slog.String(KeyJob, id) }
func Task(id string) slog.Attr   { return slog.String(KeyTask, id) }
func Worker(id string) slog.Attr { return slog.String(KeyWorker, id) }
func Shard(index int) slog.Attr  { return slog.Int(KeyShard, index) }
func Err(err error) slog.Attr    { return slog.Any("err", err) }

// Nop returns a logger that discards everything. Components take
// *slog.Logger, never nil; callers without an opinion pass Nop().
func Nop() *slog.Logger { return slog.New(slog.DiscardHandler) }

// NewLogger builds a logger from the -log-level / -log-format flag
// values shared by hornet-serve and hornet-worker. level is one of
// debug|info|warn|error, format one of text|json.
func NewLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

package obs

import "sort"

// TelemetrySnapshot is a point-in-time view of the *simulated machine*
// — as opposed to SimProbe, which times the simulator. It is sampled at
// engine sync points (all workers parked at the barrier, so plain
// counter reads are race-free), carried over the fleet wire in
// TaskEvents, merged across shard members into one full-machine view,
// and served live over the job's telemetry SSE stream.
//
// Counters are cumulative over the measured window (stats reset at the
// warmup boundary), so the final snapshot of a run agrees with the
// result document's totals.
type TelemetrySnapshot struct {
	// Cycle is the simulated-cycle position of the sample; SkippedCycles
	// counts cycles fast-forwarded past rather than simulated, so the
	// pair locates the sample on the fast-forward vs measured axis.
	Cycle         uint64 `json:"cycle"`
	SkippedCycles uint64 `json:"skipped_cycles,omitempty"`

	// Shard identity: which member produced the sample and which tile
	// span [TileLo,TileHi) it covers. A merged full-machine snapshot has
	// Shard == -1 and the full span.
	Shard      int `json:"shard"`
	ShardCount int `json:"shard_count"`
	TileLo     int `json:"tile_lo"`
	TileHi     int `json:"tile_hi"`

	Tiles []TileTelemetry `json:"tiles,omitempty"`
	Links []LinkTelemetry `json:"links,omitempty"`
}

// TileTelemetry is one tile's flit counters at the sample point.
type TileTelemetry struct {
	Tile           int     `json:"tile"`
	FlitsInjected  uint64  `json:"flits_injected"`
	FlitsDelivered uint64  `json:"flits_delivered"`
	AvgFlitLatency float64 `json:"avg_flit_latency,omitempty"`
}

// LinkTelemetry is the instantaneous ingress VC-buffer occupancy of one
// directed link (flits queued at To's input port facing From).
type LinkTelemetry struct {
	From      int `json:"from"`
	To        int `json:"to"`
	Occupancy int `json:"occupancy"`
	Capacity  int `json:"capacity"`
}

// FlitsInjected sums the per-tile injection counters.
func (s TelemetrySnapshot) FlitsInjected() uint64 {
	var n uint64
	for _, t := range s.Tiles {
		n += t.FlitsInjected
	}
	return n
}

// FlitsDelivered sums the per-tile delivery counters.
func (s TelemetrySnapshot) FlitsDelivered() uint64 {
	var n uint64
	for _, t := range s.Tiles {
		n += t.FlitsDelivered
	}
	return n
}

// BufferedFlits sums link occupancy across the sampled span.
func (s TelemetrySnapshot) BufferedFlits() int {
	var n int
	for _, l := range s.Links {
		n += l.Occupancy
	}
	return n
}

// TopLinks returns the k links with the highest occupancy, ties broken
// by (From, To) so the ordering is deterministic.
func (s TelemetrySnapshot) TopLinks(k int) []LinkTelemetry {
	links := append([]LinkTelemetry(nil), s.Links...)
	sort.Slice(links, func(a, b int) bool {
		if links[a].Occupancy != links[b].Occupancy {
			return links[a].Occupancy > links[b].Occupancy
		}
		if links[a].From != links[b].From {
			return links[a].From < links[b].From
		}
		return links[a].To < links[b].To
	})
	if k < len(links) {
		links = links[:k]
	}
	return links
}

// MergeTelemetry folds per-shard snapshots into one full-machine view:
// tiles and links concatenate (spans are disjoint), the cycle position
// is the minimum across members (the machine has coherently reached at
// least that cycle), and the span is the union. Order of parts does not
// affect the result; tiles and links come out sorted.
func MergeTelemetry(parts []TelemetrySnapshot) TelemetrySnapshot {
	if len(parts) == 0 {
		return TelemetrySnapshot{Shard: -1}
	}
	if len(parts) == 1 && parts[0].ShardCount <= 1 {
		return parts[0]
	}
	out := TelemetrySnapshot{
		Shard:         -1,
		ShardCount:    parts[0].ShardCount,
		Cycle:         parts[0].Cycle,
		SkippedCycles: parts[0].SkippedCycles,
		TileLo:        parts[0].TileLo,
		TileHi:        parts[0].TileHi,
	}
	for _, p := range parts {
		if p.Cycle < out.Cycle {
			out.Cycle = p.Cycle
			out.SkippedCycles = p.SkippedCycles
		}
		if p.TileLo < out.TileLo {
			out.TileLo = p.TileLo
		}
		if p.TileHi > out.TileHi {
			out.TileHi = p.TileHi
		}
		out.Tiles = append(out.Tiles, p.Tiles...)
		out.Links = append(out.Links, p.Links...)
	}
	sort.Slice(out.Tiles, func(a, b int) bool { return out.Tiles[a].Tile < out.Tiles[b].Tile })
	sort.Slice(out.Links, func(a, b int) bool {
		if out.Links[a].From != out.Links[b].From {
			return out.Links[a].From < out.Links[b].From
		}
		return out.Links[a].To < out.Links[b].To
	})
	return out
}

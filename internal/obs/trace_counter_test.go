package obs

import (
	"testing"
	"time"
)

// Counter events are Perfetto "C" phase with numeric args — the value
// types matter, Perfetto silently drops string-valued counter samples.
func TestTimelineCounterTrack(t *testing.T) {
	tl := NewTimeline("job-x", time.Now())
	tl.Counter("injection_rate", map[string]float64{"flits_per_cycle": 0.25})
	tl.Counter("injection_rate", nil) // empty sample: dropped, not emitted

	doc := tl.Document()
	var counters []TraceEvent
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "C" {
			counters = append(counters, ev)
		}
	}
	if len(counters) != 1 {
		t.Fatalf("counter events = %d, want 1", len(counters))
	}
	if counters[0].Name != "injection_rate" {
		t.Errorf("counter name = %q", counters[0].Name)
	}
	v, ok := counters[0].Args["flits_per_cycle"].(float64)
	if !ok || v != 0.25 {
		t.Errorf("counter arg = %#v, want float64 0.25", counters[0].Args["flits_per_cycle"])
	}
}

// The configurable cap drops overflow events, counts them, and surfaces
// the count in both Dropped() and the rendered document's otherData.
func TestTimelineCapAndDropped(t *testing.T) {
	tl := NewTimeline("job-y", time.Now())
	tl.SetCap(3)
	tl.SetCap(0) // <= 0 keeps the previous cap
	for i := 0; i < 10; i++ {
		tl.Instant("tick", nil)
	}
	tl.Counter("rate", map[string]float64{"v": 1}) // also subject to the cap

	if got := tl.Dropped(); got != 8 {
		t.Fatalf("dropped = %d, want 8 (10 instants + 1 counter - cap 3)", got)
	}
	doc := tl.Document()
	// cap(3) events + the process_name metadata record.
	if len(doc.TraceEvents) != 4 {
		t.Errorf("rendered events = %d, want 4", len(doc.TraceEvents))
	}
	if doc.OtherData["dropped_events"] != "8" {
		t.Errorf("otherData = %v, want dropped_events=8", doc.OtherData)
	}
}

package obs

import (
	"bytes"
	"strings"
	"testing"
)

// A registry exercising every instrument kind — including the dynamic
// GaugeSetFunc series — must render an exposition the strict linter
// accepts; this is the same check CI runs over the live daemons.
func TestLintAcceptsRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests.", L("route", "GET /x"), L("code", "200")).Inc()
	r.Gauge("t_depth", "Depth.").Set(3)
	r.GaugeFunc("t_live", "Live.", func() float64 { return 1 })
	r.Histogram("t_latency_seconds", "Latency.", nil).Observe(0.02)
	r.GaugeSetFunc("t_link_occupancy", "Hot links.", func() []GaugeSample {
		return []GaugeSample{
			{Labels: []Label{L("job", "j1"), L("from", "0"), L("to", "1")}, Value: 4},
			{Labels: []Label{L("job", "j1"), L("from", "7"), L("to", "3")}, Value: 2},
		}
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheusText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("linter rejected the registry's own exposition:\n%v\n---\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `t_link_occupancy{job="j1",from="0",to="1"} 4`) {
		t.Errorf("GaugeSetFunc series missing from exposition:\n%s", buf.String())
	}
}

// The linter must reject the scraper-visible violations it exists to
// catch; each case is a minimal exposition with exactly one defect.
func TestLintRejectsViolations(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "x_total 1\n",
		"duplicate series": "# TYPE x_total counter\n" +
			"x_total 1\nx_total 2\n",
		"bad metric name": "# TYPE 0bad counter\n",
		"bad label name": "# TYPE x gauge\n" +
			"x{0bad=\"v\"} 1\n",
		"unquoted label value": "# TYPE x gauge\n" +
			"x{a=v} 1\n",
		"bad escape in label value": "# TYPE x gauge\n" +
			"x{a=\"\\q\"} 1\n",
		"bad value":    "# TYPE x gauge\nx yes\n",
		"unknown type": "# TYPE x thing\n",
		"HELP after TYPE": "# TYPE x gauge\n" +
			"# HELP x late\n",
		"interleaved families": "# TYPE a counter\n# TYPE b counter\n" +
			"a_total 1\n",
		"reopened family": "# TYPE a counter\na 1\n" +
			"# TYPE b counter\nb 1\n" +
			"a 2\n",
		"bare histogram sample": "# TYPE h histogram\n" +
			"h 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\n",
	}
	for name, text := range cases {
		if err := LintPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: linter accepted:\n%s", name, text)
		}
	}

	// And the valid shapes those defects are mutations of must pass.
	valid := "# HELP h Latency.\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 0.4\nh_count 5\n" +
		"# TYPE x gauge\n" +
		"x{a=\"with \\\"quotes\\\" and \\n\"} 1\n" +
		"x NaN\n"
	if err := LintPrometheusText(strings.NewReader(valid)); err != nil {
		t.Errorf("linter rejected a valid exposition: %v", err)
	}
}

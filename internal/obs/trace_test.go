package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTimelineSpans(t *testing.T) {
	tl := NewTimeline("job-000001 e2e", time.Now())
	tl.Begin("queued", nil)
	tl.Begin("queued", map[string]string{"dup": "ignored"}) // idempotent
	tl.End("queued", map[string]string{"worker": "w1"})
	tl.Begin("running", nil)
	tl.Instant("checkpoint", map[string]string{"cycle": "500"})
	tl.Begin("migrate", map[string]string{"from": "w1"})
	tl.End("migrate", map[string]string{"to": "w2"})
	tl.End("never-opened", nil) // no-op

	doc := tl.Document()
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("DisplayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byName := map[string]TraceEvent{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev
	}
	if meta, ok := byName["process_name"]; !ok || meta.Phase != "M" || meta.Args["name"] != "job-000001 e2e" {
		t.Errorf("missing/bad process_name metadata: %+v", meta)
	}
	if q := byName["queued"]; q.Phase != "X" || q.Args["worker"] != "w1" || q.Args["dup"] != nil {
		t.Errorf("queued span wrong: %+v", q)
	}
	if r := byName["running"]; r.Phase != "B" {
		t.Errorf("open running span should render as B, got %+v", r)
	}
	if m := byName["migrate"]; m.Phase != "X" || m.Args["from"] != "w1" || m.Args["to"] != "w2" {
		t.Errorf("migrate span wrong: %+v", m)
	}
	if c := byName["checkpoint"]; c.Phase != "i" || c.Args["cycle"] != "500" {
		t.Errorf("checkpoint instant wrong: %+v", c)
	}
	if _, ok := byName["never-opened"]; ok {
		t.Error("End without Begin recorded an event")
	}

	// The document must round-trip as Chrome trace_event JSON.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back TraceDocument
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.TraceEvents) != len(doc.TraceEvents) {
		t.Errorf("round-trip lost events: %d != %d", len(back.TraceEvents), len(doc.TraceEvents))
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("unmarshal generic: %v", err)
	}
	if _, ok := generic["traceEvents"].([]any); !ok {
		t.Errorf("traceEvents is not a JSON array: %T", generic["traceEvents"])
	}
}

func TestTimelineCap(t *testing.T) {
	tl := NewTimeline("capped", time.Now())
	for i := 0; i < defaultTimelineCap+50; i++ {
		tl.Instant("tick", nil)
	}
	doc := tl.Document()
	// +1 for the metadata event.
	if len(doc.TraceEvents) != defaultTimelineCap+1 {
		t.Errorf("cap not enforced: %d events", len(doc.TraceEvents))
	}
	if doc.OtherData["dropped_events"] != "50" {
		t.Errorf("dropped_events = %q, want 50", doc.OtherData["dropped_events"])
	}
}

func TestProbeSnapshot(t *testing.T) {
	p := NewSimProbe()
	pp0 := p.Partition(0, 2, 0, 8)
	pp1 := p.Partition(1, 2, 8, 16)
	pp0.AddCycles(100)
	pp0.AddCompute(80 * time.Millisecond)
	pp0.AddBarrier(20 * time.Millisecond)
	pp1.AddCycles(100)
	pp1.AddCompute(50 * time.Millisecond)
	pp1.AddBarrier(50 * time.Millisecond)
	p.RunDone(100, 25, 100*time.Millisecond)
	p.ShardSync(2 * time.Millisecond)

	s := p.Snapshot()
	if s.Runs != 1 || s.Cycles != 100 || s.SkippedCycles != 25 {
		t.Errorf("totals wrong: %+v", s)
	}
	if s.CyclesPerSec < 999 || s.CyclesPerSec > 1001 {
		t.Errorf("cycles/sec = %v, want ~1000", s.CyclesPerSec)
	}
	if len(s.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(s.Partitions))
	}
	if s.Partitions[1].TileLo != 8 || s.Partitions[1].TileHi != 16 {
		t.Errorf("partition 1 span wrong: %+v", s.Partitions[1])
	}
	if got := s.BarrierWallMS(); got < 69.9 || got > 70.1 {
		t.Errorf("BarrierWallMS = %v, want 70", got)
	}
	if got := s.ComputeWallMS(); got < 129.9 || got > 130.1 {
		t.Errorf("ComputeWallMS = %v, want 130", got)
	}
	if s.ShardSyncs != 1 || s.ShardSyncWallMS < 1.9 {
		t.Errorf("shard sync totals wrong: %+v", s)
	}
	// Same-worker Partition across a second run accumulates.
	if p.Partition(0, 2, 0, 8) != pp0 {
		t.Error("Partition not stable across runs")
	}
}

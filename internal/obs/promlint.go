package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheusText strictly parses a text-format (0.0.4) exposition
// and returns an error describing the first violation found: malformed
// metric or label names, bad escaping inside label values, unparsable
// sample values, duplicate series, samples appearing before their
// family's TYPE line, interleaved or repeated families, HELP after
// TYPE, histogram sample names outside the _bucket/_sum/_count scheme,
// or non-cumulative bucket counts. It exists so CI can hold both the
// coordinator's and the workers' hand-rolled expositions to the rules
// a real Prometheus scraper enforces.
func LintPrometheusText(r io.Reader) error {
	var (
		nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	)
	type familyState struct {
		typ     string
		hasHelp bool
		done    bool // a different family started after this one
	}
	families := map[string]*familyState{}
	seen := map[string]bool{} // name + rendered labels -> sample seen
	var current string        // family owning the samples being read
	var lastBucket float64    // previous cumulative bucket count
	var lastBucketKey string  // series identity of that bucket run

	// sampleFamily maps a sample name to its family, folding histogram
	// suffixes onto the base name when that base is a histogram.
	sampleFamily := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := families[base]; ok && f.typ == "histogram" {
					return base, suf
				}
			}
		}
		return name, ""
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("promlint: line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !nameRe.MatchString(name) {
				return fail("bad metric name %q", name)
			}
			f := families[name]
			switch fields[1] {
			case "HELP":
				if f != nil {
					return fail("HELP for %s after its TYPE or samples", name)
				}
				families[name] = &familyState{hasHelp: true}
				// HELP opens the family: remember it so TYPE follows.
				if current != "" && current != name {
					families[current].done = true
				}
				current = name
			case "TYPE":
				if len(fields) != 4 {
					return fail("TYPE needs a type")
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fail("unknown type %q", fields[3])
				}
				if f == nil {
					families[name] = &familyState{typ: fields[3]}
				} else {
					if f.typ != "" {
						return fail("duplicate TYPE for %s", name)
					}
					if f.done {
						return fail("family %s reopened", name)
					}
					f.typ = fields[3]
				}
				if current != "" && current != name {
					families[current].done = true
				}
				current = name
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !nameRe.MatchString(name) {
			return fail("bad sample name %q", name)
		}
		labels := ""
		if strings.HasPrefix(rest, "{") {
			end, err := scanLabels(rest, labelRe)
			if err != nil {
				return fail("%v", err)
			}
			labels, rest = rest[:end], rest[end:]
		}
		value := strings.TrimSpace(rest)
		if i := strings.IndexByte(value, ' '); i >= 0 {
			// Optional timestamp after the value.
			ts := strings.TrimSpace(value[i+1:])
			value = value[:i]
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return fail("bad timestamp %q", ts)
			}
		}
		v, err := parseSampleValue(value)
		if err != nil {
			return fail("bad value %q", value)
		}

		fam, suffix := sampleFamily(name)
		f, ok := families[fam]
		if !ok || f.typ == "" {
			return fail("sample without preceding TYPE (family %s)", fam)
		}
		if fam != current {
			return fail("sample for %s interleaved into family %s", fam, current)
		}
		if f.done {
			return fail("family %s reopened by sample", fam)
		}
		if f.typ == "histogram" && suffix == "" {
			return fail("histogram %s sample must be _bucket, _sum or _count", fam)
		}
		key := name + labels
		if seen[key] {
			return fail("duplicate series %s", key)
		}
		seen[key] = true

		// Bucket runs must be cumulative per series identity (labels
		// minus le), in the order emitted.
		if suffix == "_bucket" {
			runKey := name + stripLE(labels)
			if runKey != lastBucketKey {
				lastBucketKey, lastBucket = runKey, 0
			}
			if v+1e-9 < lastBucket {
				return fail("bucket counts not cumulative in %s", runKey)
			}
			lastBucket = v
		} else {
			lastBucketKey = ""
		}
	}
	return sc.Err()
}

// scanLabels validates a rendered label set at the start of s and
// returns the index just past the closing brace.
func scanLabels(s string, labelRe *regexp.Regexp) (int, error) {
	i := 1 // past '{'
	names := map[string]bool{}
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		name := s[i : i+j]
		if !labelRe.MatchString(name) {
			return 0, fmt.Errorf("bad label name %q", name)
		}
		if names[name] {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		names[name] = true
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated value for label %s", name)
			}
			switch s[i] {
			case '\\':
				if i+1 >= len(s) || !strings.ContainsRune(`\"n`, rune(s[i+1])) {
					return 0, fmt.Errorf("bad escape in label %s", name)
				}
				i += 2
				continue
			case '"':
			default:
				i++
				continue
			}
			break
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// stripLE removes the le="..." pair from a rendered label set so
// bucket runs of one histogram series share an identity.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, part := range splitLabels(inner) {
		if !strings.HasPrefix(part, `le="`) {
			kept = append(kept, part)
		}
	}
	sort.Strings(kept)
	return "{" + strings.Join(kept, ",") + "}"
}

// splitLabels splits a rendered label-set body on commas outside
// quoted values.
func splitLabels(s string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

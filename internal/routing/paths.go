package routing

import (
	"hornet/internal/noc"
	"hornet/internal/topology"
)

// mesh is the geometry interface the builders consume; *topology.Topology
// satisfies it. Keeping it narrow makes the path math unit-testable with
// synthetic geometries.
type mesh = *topology.Topology

// xyNext returns the next hop of the x-first dimension-ordered route from
// v to dst on a (non-wraparound) mesh layer, or v itself when v == dst.
func xyNext(t mesh, v, dst noc.NodeID) noc.NodeID {
	vx, vy := t.XY(v)
	dx, dy := t.XY(dst)
	l := t.Layer(v)
	switch {
	case vx < dx:
		return t.NodeAtL(vx+1, vy, l)
	case vx > dx:
		return t.NodeAtL(vx-1, vy, l)
	case vy < dy:
		return t.NodeAtL(vx, vy+1, l)
	case vy > dy:
		return t.NodeAtL(vx, vy-1, l)
	}
	return v
}

// yxNext is the y-first counterpart of xyNext.
func yxNext(t mesh, v, dst noc.NodeID) noc.NodeID {
	vx, vy := t.XY(v)
	dx, dy := t.XY(dst)
	l := t.Layer(v)
	switch {
	case vy < dy:
		return t.NodeAtL(vx, vy+1, l)
	case vy > dy:
		return t.NodeAtL(vx, vy-1, l)
	case vx < dx:
		return t.NodeAtL(vx+1, vy, l)
	case vx > dx:
		return t.NodeAtL(vx-1, vy, l)
	}
	return v
}

// xyPath returns the inclusive x-first path from a to b within one layer.
func xyPath(t mesh, a, b noc.NodeID) []noc.NodeID {
	path := []noc.NodeID{a}
	v := a
	for v != b {
		n := xyNext(t, v, b)
		if n == v {
			panicf("routing: xyPath stuck at %d toward %d", v, b)
		}
		path = append(path, n)
		v = n
	}
	return path
}

// yxPath returns the inclusive y-first path from a to b within one layer.
func yxPath(t mesh, a, b noc.NodeID) []noc.NodeID {
	path := []noc.NodeID{a}
	v := a
	for v != b {
		n := yxNext(t, v, b)
		if n == v {
			panicf("routing: yxPath stuck at %d toward %d", v, b)
		}
		path = append(path, n)
		v = n
	}
	return path
}

// onXYPath reports whether node v lies on the x-first path from s to d.
func onXYPath(t mesh, s, d, v noc.NodeID) bool {
	sx, sy := t.XY(s)
	dx, dy := t.XY(d)
	vx, vy := t.XY(v)
	if t.Layer(v) != t.Layer(s) && t.Layer(v) != t.Layer(d) {
		return false
	}
	// Horizontal segment at source row, then vertical segment at dest col.
	if vy == sy && between(vx, sx, dx) {
		return true
	}
	return vx == dx && between(vy, sy, dy)
}

// onYXPath reports whether node v lies on the y-first path from s to d.
func onYXPath(t mesh, s, d, v noc.NodeID) bool {
	sx, sy := t.XY(s)
	dx, dy := t.XY(d)
	vx, vy := t.XY(v)
	if vx == sx && between(vy, sy, dy) {
		return true
	}
	return vy == dy && between(vx, sx, dx)
}

func between(v, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return a <= v && v <= b
}

// ringLeg describes one dimension-ordered traversal segment on a ring
// (used by torus routing): the node sequence and the index of the step
// that crosses the wraparound ("dateline") edge, or -1.
type ringLeg struct {
	path     []noc.NodeID
	dateline int // path[dateline] -> path[dateline+1] crosses the wrap edge
}

// ringLegsX returns the candidate x-dimension legs from a toward column
// bx on a torus row, one per direction when distances tie.
func ringLegsX(t mesh, a noc.NodeID, bx int) []ringLeg {
	ax, ay := t.XY(a)
	w := t.Width
	return ringLegs(ax, bx, w, func(x int) noc.NodeID { return t.NodeAt(x, ay) })
}

// ringLegsY is the y-dimension counterpart.
func ringLegsY(t mesh, a noc.NodeID, by int) []ringLeg {
	ax, ay := t.XY(a)
	h := t.Height
	return ringLegs(ay, by, h, func(y int) noc.NodeID { return t.NodeAt(ax, y) })
}

// ringLegs computes the shortest traversal(s) from index a to index b on
// a ring of size n; node converts a ring index to a NodeID. The dateline
// is the wrap edge between index n-1 and index 0.
func ringLegs(a, b, n int, node func(int) noc.NodeID) []ringLeg {
	if a == b {
		return []ringLeg{{path: []noc.NodeID{node(a)}, dateline: -1}}
	}
	fwd := (b - a + n) % n // steps in +1 direction
	bwd := (a - b + n) % n // steps in -1 direction
	var legs []ringLeg
	build := func(dir, steps int) ringLeg {
		leg := ringLeg{dateline: -1}
		idx := a
		leg.path = append(leg.path, node(idx))
		for s := 0; s < steps; s++ {
			next := (idx + dir + n) % n
			if (dir == 1 && idx == n-1) || (dir == -1 && idx == 0) {
				leg.dateline = s
			}
			leg.path = append(leg.path, node(next))
			idx = next
		}
		return leg
	}
	switch {
	case fwd < bwd:
		legs = append(legs, build(1, fwd))
	case bwd < fwd:
		legs = append(legs, build(-1, bwd))
	default:
		legs = append(legs, build(1, fwd), build(-1, bwd))
	}
	return legs
}

// addRingLeg emits the table entries for one ring leg: flow fIn on entry,
// renamed to fIn.WithPhase2() after the dateline crossing. It returns the
// flow ID in effect at the leg's final node. last reports whether the leg
// ends at the flow's destination (emitting an ejection entry); otherwise
// cont is invoked with (finalNode, prevNode, flowAtEnd) so the caller can
// chain the next dimension.
func (b *builder) addRingLeg(leg ringLeg, prev0 noc.NodeID, fIn noc.FlowID, w float64, last bool) (endPrev noc.NodeID, fOut noc.FlowID) {
	f := fIn
	prev := prev0
	for i := 0; i < len(leg.path)-1; i++ {
		nf := f
		if i == leg.dateline {
			nf = f.WithPhase2()
		}
		b.add(leg.path[i], prev, f, leg.path[i+1], nf, w)
		prev = leg.path[i]
		f = nf
	}
	if last {
		b.addEject(leg.path[len(leg.path)-1], prev, f, w)
	}
	return prev, f
}

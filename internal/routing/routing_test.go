package routing

import (
	"testing"
	"testing/quick"

	"hornet/internal/config"
	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/topology"
)

func mesh8(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(config.TopologyConfig{Kind: config.TopoMesh, Width: 8, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mesh3(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(config.TopologyConfig{Kind: config.TopoMesh, Width: 3, Height: 3})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestXYPathProperties(t *testing.T) {
	topo := mesh8(t)
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		a := noc.NodeID(aRaw % 64)
		b := noc.NodeID(bRaw % 64)
		p := xyPath(topo, a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		// Minimal length and neighbor-connected.
		if len(p)-1 != topo.ManhattanDistance(a, b) {
			return false
		}
		for i := 0; i < len(p)-1; i++ {
			if topo.ManhattanDistance(p[i], p[i+1]) != 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnXYPathConsistent(t *testing.T) {
	topo := mesh8(t)
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		a := noc.NodeID(aRaw % 64)
		b := noc.NodeID(bRaw % 64)
		path := xyPath(topo, a, b)
		onPath := map[noc.NodeID]bool{}
		for _, v := range path {
			onPath[v] = true
		}
		for v := noc.NodeID(0); v < 64; v++ {
			if onXYPath(topo, a, b, v) != onPath[v] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// walkFlow follows a flow through the tables from src, sampling weighted
// entries with the rng, and returns the hop count to ejection.
func walkFlow(t *testing.T, tables *Tables, topo *topology.Topology, f noc.FlowID, rng *sim.RNG) int {
	t.Helper()
	node := f.Src()
	prev := node
	flow := f
	for hops := 0; hops < 1000; hops++ {
		entries := tables.Lookup(node, prev, flow)
		if len(entries) == 0 {
			t.Fatalf("no route at node %d prev %d flow %v", node, prev, flow)
		}
		w := make([]float64, len(entries))
		for i, e := range entries {
			w[i] = e.Weight
		}
		e := entries[rng.Pick(w)]
		if e.Next == node {
			if node != f.Dst() {
				t.Fatalf("flow %v ejected at %d, want %d", f, node, f.Dst())
			}
			if e.NextFlow != f.Base() {
				t.Fatalf("flow %v ejected as %v, want base restored", f, e.NextFlow)
			}
			return hops
		}
		// The next hop must be a real neighbour.
		ok := false
		for _, n := range topo.Neighbors(node) {
			if n == e.Next {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("flow %v at %d routed to non-neighbour %d", flow, node, e.Next)
		}
		prev, node, flow = node, e.Next, e.NextFlow
	}
	t.Fatalf("flow %v did not terminate", f)
	return -1
}

func TestAllAlgorithmsDeliverEveryFlow(t *testing.T) {
	topo := mesh8(t)
	algs := []Algorithm{
		NewXY(topo), NewYX(topo), NewO1Turn(topo),
		NewROMM(topo), NewValiant(topo), NewPROM(topo), NewWestFirst(topo),
	}
	rng := sim.NewRNG(77)
	for _, alg := range algs {
		tables := NewTables(alg)
		for src := noc.NodeID(0); src < 64; src += 7 {
			for dst := noc.NodeID(0); dst < 64; dst += 5 {
				if src == dst {
					continue
				}
				f := noc.MakeFlow(src, dst, 0)
				// Sample several walks for the probabilistic schemes.
				for k := 0; k < 4; k++ {
					walkFlow(t, tables, topo, f, rng)
				}
			}
		}
	}
}

func TestMinimalAlgorithmsTakeMinimalPaths(t *testing.T) {
	topo := mesh8(t)
	rng := sim.NewRNG(13)
	for _, alg := range []Algorithm{NewXY(topo), NewYX(topo), NewO1Turn(topo), NewROMM(topo), NewPROM(topo), NewWestFirst(topo)} {
		tables := NewTables(alg)
		for _, pair := range [][2]noc.NodeID{{0, 63}, {7, 56}, {12, 50}, {33, 38}} {
			f := noc.MakeFlow(pair[0], pair[1], 0)
			min := topo.ManhattanDistance(pair[0], pair[1])
			for k := 0; k < 8; k++ {
				if hops := walkFlow(t, tables, topo, f, rng); hops != min {
					t.Fatalf("%s: flow %v took %d hops, minimal is %d", alg.Name(), f, hops, min)
				}
			}
		}
	}
}

func TestValiantPathsMayBeNonMinimal(t *testing.T) {
	topo := mesh8(t)
	tables := NewTables(NewValiant(topo))
	rng := sim.NewRNG(5)
	f := noc.MakeFlow(0, 1, 0)
	longer := false
	for k := 0; k < 64; k++ {
		if walkFlow(t, tables, topo, f, rng) > 1 {
			longer = true
			break
		}
	}
	if !longer {
		t.Fatal("valiant never used a non-minimal path for adjacent nodes")
	}
}

// TestROMMPaperExample replays the paper's §II-A2 worked example on a 3x3
// mesh: for a flow 6 -> 2, the table at node 4 for packets arriving from
// node 7 offers node 1 (no rename) and node 5 (renamed) at equal weight,
// and packets arriving from node 3 continue to node 5 renamed.
func TestROMMPaperExample(t *testing.T) {
	topo := mesh3(t)
	// The paper's node numbering has node 0 top-left, row-major; ours
	// matches (node 6 bottom-left with y growing downward is a mirror,
	// but the combinatorics are identical under the relabeling y' = 2-y:
	// paper's 6->2 is our 0->8's mirror; use src=6, dst=2 with our
	// coordinates: 6=(0,2), 2=(2,0), intermediate rectangle = whole mesh).
	tables := NewTables(NewROMM(topo))
	f := noc.MakeFlow(6, 2, 0)

	entries := tables.Lookup(4, 7, f)
	if len(entries) != 2 {
		t.Fatalf("node 4 from 7: %d entries, want 2: %v", len(entries), entries)
	}
	var toward1, toward5 *noc.RouteEntry
	for i := range entries {
		switch entries[i].Next {
		case 1:
			toward1 = &entries[i]
		case 5:
			toward5 = &entries[i]
		}
	}
	if toward1 == nil || toward5 == nil {
		t.Fatalf("node 4 from 7 entries: %v, want next hops 1 and 5", entries)
	}
	if toward1.Weight != toward5.Weight {
		t.Fatalf("weights differ: %v vs %v (paper: equal probability)", toward1.Weight, toward5.Weight)
	}
	if toward1.NextFlow.Phase2() {
		t.Fatal("continuing toward intermediate 1 must not rename")
	}
	if !toward5.NextFlow.Phase2() {
		t.Fatal("passing the intermediate at 4 must rename the flow")
	}

	// Arriving at 4 from 3 means the intermediate hop has been passed:
	// the only continuation is node 5 under the renamed flow.
	f2 := f.WithPhase2()
	entries = tables.Lookup(4, 3, f2)
	if len(entries) != 1 || entries[0].Next != 5 {
		t.Fatalf("node 4 from 3 (phase 2): %v, want single entry toward 5", entries)
	}
}

func TestO1TurnSourceSplit(t *testing.T) {
	topo := mesh3(t)
	tables := NewTables(NewO1Turn(topo))
	f := noc.MakeFlow(6, 2, 0)
	entries := tables.Lookup(6, 6, f)
	if len(entries) != 2 {
		t.Fatalf("o1turn source entries: %v, want XY + YX options", entries)
	}
	if entries[0].Weight != entries[1].Weight {
		t.Fatal("o1turn subroutes must be equiprobable")
	}
	// Destination has two incoming table lines (from 1 and from 5).
	if len(tables.Lookup(2, 1, f)) != 1 || len(tables.Lookup(2, 5, f)) != 1 {
		t.Fatal("o1turn destination entries missing")
	}
}

func TestPROMWeightsCountPaths(t *testing.T) {
	topo := mesh3(t)
	tables := NewTables(NewPROM(topo))
	// Flow 0 -> 8 (corner to corner): at the source, going right leaves a
	// 1x2 remainder (3 paths... C(3,1)=3) and going down leaves C(3,1)=3:
	// equal weights; at node 1 (from 0), right leads to C(2,0)=1 x ... the
	// invariant tested: every minimal path is equally likely, so the two
	// productive hops at the source have equal weight.
	f := noc.MakeFlow(0, 8, 0)
	entries := tables.Lookup(0, 0, f)
	if len(entries) != 2 {
		t.Fatalf("PROM source entries: %v", entries)
	}
	if entries[0].Weight != entries[1].Weight {
		t.Fatalf("PROM corner-to-corner source weights differ: %v", entries)
	}
}

func TestWestFirstNeverTurnsIntoWest(t *testing.T) {
	topo := mesh8(t)
	alg := NewWestFirst(topo)
	tables := NewTables(alg)
	// Destination strictly west: the only option anywhere en route is west.
	f := noc.MakeFlow(7, 0, 0) // (7,0) -> (0,0)
	entries := tables.Lookup(7, 7, f)
	if len(entries) != 1 || entries[0].Next != 6 {
		t.Fatalf("west-bound flow offered %v, want only west", entries)
	}
}

func TestGreedyMinMaxBalances(t *testing.T) {
	topo := mesh8(t)
	var flows []noc.FlowID
	// Many flows crossing the same row under XY.
	for i := 0; i < 8; i++ {
		flows = append(flows, noc.MakeFlow(noc.NodeID(i), noc.NodeID(56+i), 0))
	}
	paths := GreedyMinMax(topo, flows)
	if len(paths) != len(flows) {
		t.Fatalf("got %d paths for %d flows", len(paths), len(flows))
	}
	st, err := NewStatic(paths)
	if err != nil {
		t.Fatal(err)
	}
	tables := NewTables(st)
	rng := sim.NewRNG(3)
	for _, f := range flows {
		walkFlow(t, tables, topo, f, rng)
	}
}

func TestStaticRejectsBadPaths(t *testing.T) {
	if _, err := NewStatic([][]int{{1}}); err == nil {
		t.Fatal("single-node path accepted")
	}
	if _, err := NewStatic([][]int{{1, 1}}); err == nil {
		t.Fatal("repeated node accepted")
	}
}

func TestTorusDatelineRenaming(t *testing.T) {
	topo, err := topology.New(config.TopologyConfig{Kind: config.TopoTorus, Width: 4, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	tables := NewTables(NewXY(topo))
	rng := sim.NewRNG(9)
	// Flow 0 -> 3 goes the short way across the X wrap edge (1 hop).
	f := noc.MakeFlow(0, 3, 0)
	if hops := walkFlow(t, tables, topo, f, rng); hops != 1 {
		t.Fatalf("wraparound flow took %d hops, want 1", hops)
	}
	entries := tables.Lookup(0, 0, f)
	if len(entries) != 1 {
		t.Fatalf("source entries: %v", entries)
	}
	if !entries[0].NextFlow.Phase2() {
		t.Fatal("crossing the dateline must rename the flow")
	}
}

package routing

import (
	"hornet/internal/noc"
	"hornet/internal/topology"
)

// TwoPhase implements the paper's two-phase probabilistic oblivious
// schemes (§II-A2): route first to a random intermediate node by XY, then
// to the destination by XY. The flow is renamed (phase bit) at the
// intermediate node and renamed back at the destination; entries with
// different intermediate destinations but the same next hop merge into
// one weighted table line, with weights proportional to the number of
// intermediate choices routed each way — reproducing the paper's node-4
// worked example exactly.
//
// With the intermediate drawn from the minimal rectangle this is two-phase
// ROMM (Nesson & Johnsson); drawn from the whole mesh it is Valiant.
type TwoPhase struct {
	topo    *topology.Topology
	valiant bool
}

// NewROMM returns two-phase ROMM routing over a mesh.
func NewROMM(t *topology.Topology) *TwoPhase { return &TwoPhase{topo: t} }

// NewValiant returns Valiant routing over a mesh.
func NewValiant(t *topology.Topology) *TwoPhase { return &TwoPhase{topo: t, valiant: true} }

// Name implements Algorithm.
func (tp *TwoPhase) Name() string {
	if tp.valiant {
		return "valiant"
	}
	return "romm"
}

// Adaptive implements Algorithm.
func (tp *TwoPhase) Adaptive() bool { return false }

// Class implements Algorithm: phase-1 hops use the low VC set, phase-2
// (renamed) hops the high set, giving each phase its own deadlock-free
// XY subnetwork (paper §II-A3).
func (tp *TwoPhase) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class {
	if nextFlow.Phase2() {
		return ClassHi
	}
	return ClassLo
}

// intermediates returns the candidate intermediate nodes for a flow.
func (tp *TwoPhase) intermediates(src, dst noc.NodeID) []noc.NodeID {
	t := tp.topo
	if tp.valiant {
		all := make([]noc.NodeID, t.Nodes())
		for i := range all {
			all[i] = noc.NodeID(i)
		}
		return all
	}
	sx, sy := t.XY(src)
	dx, dy := t.XY(dst)
	x0, x1 := minmax(sx, dx)
	y0, y1 := minmax(sy, dy)
	var rect []noc.NodeID
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			rect = append(rect, t.NodeAt(x, y))
		}
	}
	return rect
}

// FlowEntries implements Algorithm.
func (tp *TwoPhase) FlowEntries(f noc.FlowID) FlowRoutes {
	b := newBuilder()
	src, dst := f.Src(), f.Dst()
	if src == dst {
		b.addEject(src, src, f, 1)
		return b.finish()
	}
	inters := tp.intermediates(src, dst)
	w := 1.0 / float64(len(inters))
	f2 := f.WithPhase2()
	for _, m := range inters {
		switch m {
		case dst:
			// Phase 1 runs all the way to the destination; the packet is
			// delivered there still under its original flow ID.
			b.addPath(xyPath(tp.topo, src, dst), src, f, w)
		case src:
			// The packet starts in phase 2 immediately: the source table
			// line renames the flow on its first hop.
			p2 := xyPath(tp.topo, src, dst)
			b.add(src, src, f, p2[1], f2, w)
			b.addPath(p2[1:], src, f2, w)
		default:
			p1 := xyPath(tp.topo, src, m)
			prev := src
			for i := 0; i < len(p1)-2; i++ {
				b.add(p1[i], prev, f, p1[i+1], f, w)
				prev = p1[i]
			}
			// Renaming entry at the intermediate node m: forward into
			// phase 2 under the renamed flow.
			p2 := xyPath(tp.topo, m, dst)
			b.add(p1[len(p1)-2], prev, f, m, f, w)
			b.add(m, p1[len(p1)-2], f, p2[1], f2, w)
			b.addPath(p2[1:], m, f2, w)
		}
	}
	return b.finish()
}

func minmax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

package routing

import (
	"hornet/internal/noc"
	"hornet/internal/topology"
)

// DOR is dimension-ordered (x-first or y-first) routing on meshes, tori
// (with dateline VC switching expressed through flow renaming), and
// multilayer meshes (route to the nearest inter-layer portal, change
// layers, then route within the destination layer under a renamed flow so
// the two planar legs use disjoint VC classes).
type DOR struct {
	topo   *topology.Topology
	yFirst bool
}

// NewXY returns x-first dimension-ordered routing.
func NewXY(t *topology.Topology) *DOR { return &DOR{topo: t} }

// NewYX returns y-first dimension-ordered routing.
func NewYX(t *topology.Topology) *DOR { return &DOR{topo: t, yFirst: true} }

// Name implements Algorithm.
func (d *DOR) Name() string {
	if d.yFirst {
		return "yx"
	}
	return "xy"
}

// Adaptive implements Algorithm.
func (d *DOR) Adaptive() bool { return false }

// Class implements Algorithm: tori and multilayer meshes split VCs by the
// phase bit (pre/post dateline or pre/post layer change); plain meshes
// place no restriction.
func (d *DOR) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class {
	if d.topo.IsTorus() || d.topo.IsMultilayer() {
		if nextFlow.Phase2() {
			return ClassHi
		}
		return ClassLo
	}
	return ClassAny
}

// FlowEntries implements Algorithm.
func (d *DOR) FlowEntries(f noc.FlowID) FlowRoutes {
	b := newBuilder()
	src, dst := f.Src(), f.Dst()
	if src == dst {
		b.addEject(src, src, f, 1)
		return b.finish()
	}
	switch {
	case d.topo.IsTorus():
		d.torusEntries(b, f, src, dst)
	case d.topo.IsMultilayer():
		d.multilayerEntries(b, f, src, dst)
	default:
		if d.yFirst {
			b.addPath(yxPath(d.topo, src, dst), src, f, 1)
		} else {
			b.addPath(xyPath(d.topo, src, dst), src, f, 1)
		}
	}
	return b.finish()
}

// torusEntries emits dimension-ordered torus routes: traverse the first
// dimension's ring (shortest way, both ways on a tie), renaming the flow
// when crossing the wraparound dateline, then reset the phase at the
// dimension turn and traverse the second dimension's ring the same way.
func (d *DOR) torusEntries(b *builder, f noc.FlowID, src, dst noc.NodeID) {
	dx, dy := d.topo.XY(dst)
	var first, second []ringLeg
	if d.yFirst {
		first = ringLegsY(d.topo, src, dy)
	} else {
		first = ringLegsX(d.topo, src, dx)
	}
	wFirst := 1.0 / float64(len(first))
	for _, leg1 := range first {
		end1 := leg1.path[len(leg1.path)-1]
		if d.yFirst {
			second = ringLegsX(d.topo, end1, dx)
		} else {
			second = ringLegsY(d.topo, end1, dy)
		}
		onlyOneDim := len(leg1.path) == 1
		if end1 == dst {
			// Degenerate second dimension: first leg reaches dst.
			prev0 := src
			b.addRingLegReset(leg1, prev0, f, wFirst, true, false)
			continue
		}
		var endPrev noc.NodeID
		var fMid noc.FlowID
		if onlyOneDim {
			endPrev, fMid = src, f
		} else {
			endPrev, fMid = b.addRingLegReset(leg1, src, f, wFirst, false, false)
		}
		w2 := wFirst / float64(len(second))
		for _, leg2 := range second {
			// Reset the phase bit at the dimension turn so the second
			// ring's dateline logic starts fresh.
			b.addRingLegReset(leg2, endPrev, fMid, w2, true, fMid.Phase2())
		}
	}
}

// addRingLegReset extends addRingLeg with an optional phase reset on the
// leg's first hop (used when turning into a new dimension).
func (b *builder) addRingLegReset(leg ringLeg, prev0 noc.NodeID, fIn noc.FlowID, w float64, last bool, resetFirst bool) (endPrev noc.NodeID, fOut noc.FlowID) {
	f := fIn
	prev := prev0
	for i := 0; i < len(leg.path)-1; i++ {
		nf := f
		if i == 0 && resetFirst {
			nf = f.Base()
		}
		if i == leg.dateline {
			nf = nf.WithPhase2()
		}
		b.add(leg.path[i], prev, f, leg.path[i+1], nf, w)
		prev = leg.path[i]
		f = nf
	}
	if last {
		b.addEject(leg.path[len(leg.path)-1], prev, f, w)
	}
	return prev, f
}

// multilayerEntries routes across layers: planar DOR to the geometry's
// nearest portal, monotone layer traversal, then planar DOR to the
// destination under the phase-renamed flow.
func (d *DOR) multilayerEntries(b *builder, f noc.FlowID, src, dst noc.NodeID) {
	ls, ld := d.topo.Layer(src), d.topo.Layer(dst)
	plan := func(a, z noc.NodeID) []noc.NodeID {
		if d.yFirst {
			return yxPath(d.topo, a, z)
		}
		return xyPath(d.topo, a, z)
	}
	if ls == ld {
		b.addPath(plan(src, dst), src, f, 1)
		return
	}
	sx, sy := d.topo.XY(src)
	px, py := d.topo.Portal(sx, sy)
	pSrc := d.topo.NodeAtL(px, py, ls)
	pDst := d.topo.NodeAtL(px, py, ld)

	// Leg 1: within the source layer to the portal (flow f, class Lo).
	prev := src
	leg1 := plan(src, pSrc)
	for i := 0; i < len(leg1)-1; i++ {
		b.add(leg1[i], prev, f, leg1[i+1], f, 1)
		prev = leg1[i]
	}

	// Leg 2: monotone layer traversal at the portal column.
	step := 1
	if ld < ls {
		step = -1
	}
	v := pSrc
	for l := ls; l != ld; l += step {
		next := d.topo.NodeAtL(px, py, l+step)
		nf := f
		if l+step == ld {
			nf = f.WithPhase2() // rename on arriving at the last layer
		}
		b.add(v, prev, f, next, nf, 1)
		prev = v
		v = next
	}

	// Leg 3: within the destination layer under the renamed flow.
	f2 := f.WithPhase2()
	leg3 := plan(pDst, dst)
	if len(leg3) == 1 {
		b.addEject(pDst, prev, f2, 1)
		return
	}
	b.addPath(leg3, prev, f2, 1)
}

// O1Turn implements O1TURN routing (Seo et al.): each packet picks the XY
// or YX subroute with equal probability at the source; the two subroutes
// use disjoint VC classes for deadlock freedom. Mesh geometries only.
type O1Turn struct {
	topo *topology.Topology
}

// NewO1Turn returns O1TURN routing over a mesh.
func NewO1Turn(t *topology.Topology) *O1Turn { return &O1Turn{topo: t} }

// Name implements Algorithm.
func (o *O1Turn) Name() string { return "o1turn" }

// Adaptive implements Algorithm.
func (o *O1Turn) Adaptive() bool { return false }

// FlowEntries implements Algorithm: the union of the XY and YX paths'
// entries, each weighted 1/2 (they merge into weight-1 entries wherever
// the paths coincide; compare paper Fig 3b).
func (o *O1Turn) FlowEntries(f noc.FlowID) FlowRoutes {
	b := newBuilder()
	src, dst := f.Src(), f.Dst()
	if src == dst {
		b.addEject(src, src, f, 1)
		return b.finish()
	}
	b.addPath(xyPath(o.topo, src, dst), src, f, 0.5)
	b.addPath(yxPath(o.topo, src, dst), src, f, 0.5)
	return b.finish()
}

// Class implements Algorithm: hops on the XY subroute use the low VC set,
// hops on the YX subroute the high set; shared hops may use either.
func (o *O1Turn) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class {
	src, dst := flow.Src(), flow.Dst()
	isXY := onXYPath(o.topo, src, dst, node) && next == xyNext(o.topo, node, dst)
	isYX := onYXPath(o.topo, src, dst, node) && next == yxNext(o.topo, node, dst)
	switch {
	case isXY && isYX:
		return ClassAny
	case isXY:
		return ClassLo
	case isYX:
		return ClassHi
	}
	return ClassAny
}

package routing

import (
	"hornet/internal/noc"
	"hornet/internal/topology"
)

// PROM implements path-based, randomized, oblivious, minimal routing (Cho
// et al.): at every hop the packet chooses among the productive
// (distance-reducing) directions with propensity proportional to the
// number of remaining minimal paths through each choice, so every minimal
// path between source and destination is taken with equal probability.
//
// Deadlock avoidance uses a Duato-style escape channel: VC 0 is reserved
// for hops that follow the (deadlock-free) XY route, while the remaining
// VCs are available on every minimal hop. Combined with the router's
// periodic re-route of packets stuck in VC allocation, a blocked packet
// eventually reaches the escape subnetwork.
type PROM struct {
	topo *topology.Topology
}

// NewPROM returns PROM routing over a mesh.
func NewPROM(t *topology.Topology) *PROM { return &PROM{topo: t} }

// Name implements Algorithm.
func (p *PROM) Name() string { return "prom" }

// Adaptive implements Algorithm: PROM is oblivious; choices are sampled
// by weight, not by congestion.
func (p *PROM) Adaptive() bool { return false }

// Class implements Algorithm: hops that coincide with the XY route may
// use any VC including the escape channel; other minimal hops must avoid
// VC 0.
func (p *PROM) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class {
	if next == xyNext(p.topo, node, flow.Dst()) {
		return ClassAny
	}
	return ClassNonEscape
}

// FlowEntries implements Algorithm: for every node in the minimal
// rectangle, weighted productive next hops; weights count the minimal
// paths remaining beyond each candidate hop.
func (p *PROM) FlowEntries(f noc.FlowID) FlowRoutes {
	b := newBuilder()
	t := p.topo
	src, dst := f.Src(), f.Dst()
	if src == dst {
		b.addEject(src, src, f, 1)
		return b.finish()
	}
	sx, sy := t.XY(src)
	dx, dy := t.XY(dst)
	x0, x1 := minmax(sx, dx)
	y0, y1 := minmax(sy, dy)
	stepX := 1
	if dx < sx {
		stepX = -1
	}
	stepY := 1
	if dy < sy {
		stepY = -1
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			v := t.NodeAt(x, y)
			remX := absInt(dx - x)
			remY := absInt(dy - y)
			// All plausible previous hops: any mesh neighbour, plus the
			// node itself (local injection at the source).
			prevs := append([]noc.NodeID{v}, t.Neighbors(v)...)
			for _, prev := range prevs {
				if v == dst {
					b.addEject(v, prev, f, 1)
					continue
				}
				if remX > 0 {
					next := t.NodeAt(x+stepX, y)
					b.add(v, prev, f, next, f, minPaths(remX-1, remY))
				}
				if remY > 0 {
					next := t.NodeAt(x, y+stepY)
					b.add(v, prev, f, next, f, minPaths(remX, remY-1))
				}
			}
		}
	}
	return b.finish()
}

// minPaths returns the number of minimal lattice paths covering the given
// remaining x and y hop counts: C(rx+ry, rx).
func minPaths(rx, ry int) float64 {
	// Multiplicative binomial; exact in float64 well past 32x32 meshes'
	// 62-hop diagonals for weight-ratio purposes.
	n := rx + ry
	k := rx
	if ry < k {
		k = ry
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

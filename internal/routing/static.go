package routing

import (
	"fmt"
	"sort"

	"hornet/internal/noc"
	"hornet/internal/topology"
)

// Static routes flows along explicitly configured paths — the input
// format produced by offline bandwidth-sensitive route optimizers such as
// BSOR (Kinsy et al.), which the paper lists among the schemes its tables
// express directly. Several paths may be given for one source/destination
// pair; they become weighted alternatives.
type Static struct {
	paths map[noc.FlowID][][]noc.NodeID
}

// NewStatic builds static routing from node-ID path sequences. Each path
// must have at least two nodes and consecutive nodes must be distinct;
// neighbour validity is the router's concern (a bad path panics at
// simulation time with a clear message).
func NewStatic(paths [][]int) (*Static, error) {
	s := &Static{paths: make(map[noc.FlowID][][]noc.NodeID)}
	for i, p := range paths {
		if len(p) < 2 {
			return nil, fmt.Errorf("routing: static path %d needs >= 2 nodes", i)
		}
		np := make([]noc.NodeID, len(p))
		for j, n := range p {
			np[j] = noc.NodeID(n)
			if j > 0 && np[j] == np[j-1] {
				return nil, fmt.Errorf("routing: static path %d repeats node %d", i, n)
			}
		}
		f := noc.MakeFlow(np[0], np[len(np)-1], 0)
		s.paths[f] = append(s.paths[f], np)
	}
	return s, nil
}

// Name implements Algorithm.
func (s *Static) Name() string { return "static" }

// Adaptive implements Algorithm.
func (s *Static) Adaptive() bool { return false }

// Class implements Algorithm: the offline optimizer is responsible for
// deadlock freedom, so no VC restriction is imposed.
func (s *Static) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class {
	return ClassAny
}

// FlowEntries implements Algorithm.
func (s *Static) FlowEntries(f noc.FlowID) FlowRoutes {
	b := newBuilder()
	// Class bits are ignored for path matching: memory traffic reuses the
	// same physical routes as class-0 flows between the same endpoints.
	key := noc.MakeFlow(f.Src(), f.Dst(), 0)
	paths := s.paths[key]
	if len(paths) == 0 {
		if f.Src() == f.Dst() {
			b.addEject(f.Src(), f.Src(), f, 1)
		}
		return b.finish()
	}
	w := 1.0 / float64(len(paths))
	for _, p := range paths {
		b.addPath(p, p[0], f, w)
	}
	return b.finish()
}

// GreedyMinMax is a small offline route selector in the spirit of BSOR:
// given the flows that will run, it assigns each flow the XY or YX path
// that minimizes the maximum channel load, processing flows in descending
// path-length order. The result feeds NewStatic / config.StaticPaths.
func GreedyMinMax(t *topology.Topology, flows []noc.FlowID) [][]int {
	type cand struct {
		flow noc.FlowID
		xy   []noc.NodeID
		yx   []noc.NodeID
	}
	cands := make([]cand, 0, len(flows))
	for _, f := range flows {
		if f.Src() == f.Dst() {
			continue
		}
		cands = append(cands, cand{
			flow: f,
			xy:   xyPath(t, f.Src(), f.Dst()),
			yx:   yxPath(t, f.Src(), f.Dst()),
		})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return len(cands[i].xy) > len(cands[j].xy)
	})
	type edge struct{ a, b noc.NodeID }
	load := make(map[edge]int)
	pathLoad := func(p []noc.NodeID) int {
		m := 0
		for i := 0; i < len(p)-1; i++ {
			if l := load[edge{p[i], p[i+1]}]; l > m {
				m = l
			}
		}
		return m
	}
	addLoad := func(p []noc.NodeID) {
		for i := 0; i < len(p)-1; i++ {
			load[edge{p[i], p[i+1]}]++
		}
	}
	var out [][]int
	for _, c := range cands {
		chosen := c.xy
		if pathLoad(c.yx) < pathLoad(c.xy) {
			chosen = c.yx
		}
		addLoad(chosen)
		ip := make([]int, len(chosen))
		for i, n := range chosen {
			ip[i] = int(n)
		}
		out = append(out, ip)
	}
	return out
}

// Package routing implements HORNET's table-driven routing (paper
// §II-A2): per-node tables addressed by <prev_node, flow_id> yielding
// weighted next-hop sets with optional flow renaming, plus builders for
// XY/YX dimension-ordered routing, O1TURN, two-phase ROMM and Valiant
// (with the paper's intermediate-hop flow-renaming scheme), PROM,
// explicit static (BSOR-style) routes, and west-first turn-model adaptive
// routing. Tables are materialized lazily per flow and shared across
// nodes, so large meshes only pay for flows that actually exist.
package routing

import (
	"fmt"
	"sync"

	"hornet/internal/noc"
)

// EntryKey addresses one routing-table line: the node the table lives at,
// the node the packet arrived from (== Node for local injections), and
// the flow ID on arrival (including any phase renaming).
type EntryKey struct {
	Node, Prev noc.NodeID
	Flow       noc.FlowID
}

// FlowRoutes is the complete distributed routing state for one base flow:
// every table line at every node the flow can visit, in every phase.
type FlowRoutes map[EntryKey][]noc.RouteEntry

// Class partitions virtual channels for deadlock avoidance. The VC
// allocator maps classes onto concrete VC indices.
type Class uint8

const (
	// ClassAny allows every VC.
	ClassAny Class = iota
	// ClassLo allows the lower half of the VCs (first route phase /
	// XY subroute / pre-dateline).
	ClassLo
	// ClassHi allows the upper half (second phase / YX subroute /
	// post-dateline).
	ClassHi
	// ClassEscape allows only VC 0 (Duato-style escape channel).
	ClassEscape
	// ClassNonEscape allows every VC except 0.
	ClassNonEscape
)

// Algorithm is a routing scheme: it can materialize the complete table
// content for a flow, classify hops onto VC classes, and declare whether
// next-hop selection should be congestion-driven (adaptive) rather than
// weight-sampled.
type Algorithm interface {
	Name() string
	// FlowEntries builds all table lines for base flow f (f has no phase
	// bit set). Implementations must be pure: same flow, same result.
	FlowEntries(f noc.FlowID) FlowRoutes
	// Class returns the VC class for a hop from node toward next, given
	// the arriving and departing flow IDs.
	Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class
	// Adaptive reports whether RC should pick among entries by downstream
	// congestion instead of by weight.
	Adaptive() bool
}

// Tables is the shared, lazily materialized routing store for one
// simulated system. It is safe for concurrent use: the per-flow build is
// guarded by a sync.Once and is deterministic, so every thread observes
// identical tables.
type Tables struct {
	alg   Algorithm
	cache sync.Map // noc.FlowID (base) -> *flowOnce
}

type flowOnce struct {
	once   sync.Once
	routes FlowRoutes
}

// NewTables wraps an algorithm in a shared lazy table store.
func NewTables(alg Algorithm) *Tables {
	return &Tables{alg: alg}
}

// Algorithm returns the wrapped algorithm.
func (t *Tables) Algorithm() Algorithm { return t.alg }

func (t *Tables) routesFor(f noc.FlowID) FlowRoutes {
	base := f.Base()
	v, _ := t.cache.LoadOrStore(base, &flowOnce{})
	fo := v.(*flowOnce)
	fo.once.Do(func() { fo.routes = t.alg.FlowEntries(base) })
	return fo.routes
}

// Lookup returns the weighted next-hop set at node for a flow arriving
// from prev, or nil if the algorithm never routes that flow through that
// table line (a configuration or builder bug, which the router reports).
func (t *Tables) Lookup(node, prev noc.NodeID, flow noc.FlowID) []noc.RouteEntry {
	return t.routesFor(flow)[EntryKey{Node: node, Prev: prev, Flow: flow}]
}

// ForNode returns the node-local view implementing noc.RouteTable.
func (t *Tables) ForNode(n noc.NodeID) noc.RouteTable {
	return &nodeTable{tables: t, node: n}
}

type nodeTable struct {
	tables *Tables
	node   noc.NodeID
}

func (nt *nodeTable) Lookup(prev noc.NodeID, flow noc.FlowID) []noc.RouteEntry {
	return nt.tables.Lookup(nt.node, prev, flow)
}

func (nt *nodeTable) Adaptive() bool { return nt.tables.alg.Adaptive() }

// builder accumulates weighted table lines with entry deduplication
// (same key and same target merge by summing weights, which is how
// two-phase schemes express "several routes, one table entry", §II-A2).
type builder struct {
	acc map[EntryKey]map[target]float64
}

type target struct {
	next     noc.NodeID
	nextFlow noc.FlowID
}

func newBuilder() *builder {
	return &builder{acc: make(map[EntryKey]map[target]float64)}
}

func (b *builder) add(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID, w float64) {
	k := EntryKey{Node: node, Prev: prev, Flow: flow}
	m := b.acc[k]
	if m == nil {
		m = make(map[target]float64)
		b.acc[k] = m
	}
	m[target{next: next, nextFlow: nextFlow}] += w
}

// addEject records delivery at node (Next == node means "eject here").
func (b *builder) addEject(node, prev noc.NodeID, flow noc.FlowID, w float64) {
	b.add(node, prev, flow, node, flow.Base(), w)
}

func (b *builder) finish() FlowRoutes {
	out := make(FlowRoutes, len(b.acc))
	for k, m := range b.acc {
		entries := make([]noc.RouteEntry, 0, len(m))
		// Deterministic order: sort targets so parallel builds and
		// repeated runs produce identical entry slices (the router's
		// weighted pick indexes into this slice).
		keys := make([]target, 0, len(m))
		for t := range m {
			keys = append(keys, t)
		}
		sortTargets(keys)
		for _, t := range keys {
			entries = append(entries, noc.RouteEntry{Next: t.next, NextFlow: t.nextFlow, Weight: m[t]})
		}
		out[k] = entries
	}
	return out
}

func sortTargets(ts []target) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lessTarget(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func lessTarget(a, b target) bool {
	if a.next != b.next {
		return a.next < b.next
	}
	return a.nextFlow < b.nextFlow
}

// addPath records a deterministic path (inclusive of both endpoints) for
// flow f with the given weight: forwarding entries at every hop and an
// ejection entry at the end. prev0 seeds the first key (the source itself
// for injected packets, or the upstream node when the path is a
// continuation leg).
func (b *builder) addPath(path []noc.NodeID, prev0 noc.NodeID, f noc.FlowID, w float64) {
	if len(path) == 0 {
		return
	}
	prev := prev0
	for i := 0; i < len(path)-1; i++ {
		b.add(path[i], prev, f, path[i+1], f, w)
		prev = path[i]
	}
	b.addEject(path[len(path)-1], prev, f, w)
}

func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

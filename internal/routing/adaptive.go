package routing

import (
	"hornet/internal/noc"
	"hornet/internal/topology"
)

// WestFirst is minimal turn-model adaptive routing (Glass & Ni): a packet
// whose destination lies to the west travels the full westward distance
// first (deterministically); all remaining productive directions (east,
// north, south) are then chosen adaptively. Prohibiting the two
// turns-into-west breaks every cycle, so the scheme is deadlock-free on a
// mesh with any number of VCs. The router selects among the candidate
// entries by downstream congestion (Adaptive() == true).
type WestFirst struct {
	topo *topology.Topology
}

// NewWestFirst returns west-first adaptive routing over a mesh.
func NewWestFirst(t *topology.Topology) *WestFirst { return &WestFirst{topo: t} }

// Name implements Algorithm.
func (w *WestFirst) Name() string { return "adaptive" }

// Adaptive implements Algorithm.
func (w *WestFirst) Adaptive() bool { return true }

// Class implements Algorithm: the turn model needs no VC partitioning.
func (w *WestFirst) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) Class {
	return ClassAny
}

// FlowEntries implements Algorithm: entries for every node in the minimal
// rectangle with the turn-model-legal productive hops.
func (w *WestFirst) FlowEntries(f noc.FlowID) FlowRoutes {
	b := newBuilder()
	t := w.topo
	src, dst := f.Src(), f.Dst()
	if src == dst {
		b.addEject(src, src, f, 1)
		return b.finish()
	}
	sx, sy := t.XY(src)
	dx, dy := t.XY(dst)
	x0, x1 := minmax(sx, dx)
	y0, y1 := minmax(sy, dy)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			v := t.NodeAt(x, y)
			prevs := append([]noc.NodeID{v}, t.Neighbors(v)...)
			for _, prev := range prevs {
				if v == dst {
					b.addEject(v, prev, f, 1)
					continue
				}
				if dx < x {
					// Destination is west: west moves must come first and
					// are the only legal productive move here.
					b.add(v, prev, f, t.NodeAt(x-1, y), f, 1)
					continue
				}
				if dx > x {
					b.add(v, prev, f, t.NodeAt(x+1, y), f, 1)
				}
				if dy > y {
					b.add(v, prev, f, t.NodeAt(x, y+1), f, 1)
				}
				if dy < y {
					b.add(v, prev, f, t.NodeAt(x, y-1), f, 1)
				}
			}
		}
	}
	return b.finish()
}

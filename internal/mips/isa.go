// Package mips implements HORNET's built-in processor frontend (paper
// §II-D2): a single-cycle in-order MIPS32-subset core with either private
// local memory plus the MPI-style network syscall interface (send / poll
// / receive with DMA semantics), or a memory hierarchy port (L1+MSI or
// NUCA) for shared-memory execution; a two-pass assembler substitutes for
// the paper's GCC cross-compiler so workloads like Cannon's algorithm can
// be written as MIPS source without an external toolchain.
package mips

import "fmt"

// Register names, by architectural number.
var regNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// Conventional register numbers used by the core and assembler.
const (
	RegZero = 0
	RegAT   = 1
	RegV0   = 2
	RegV1   = 3
	RegA0   = 4
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegSP   = 29
	RegRA   = 31
)

// Opcode values (instruction bits 31..26).
const (
	opSpecial = 0x00
	opRegImm  = 0x01
	opJ       = 0x02
	opJAL     = 0x03
	opBEQ     = 0x04
	opBNE     = 0x05
	opBLEZ    = 0x06
	opBGTZ    = 0x07
	opADDI    = 0x08
	opADDIU   = 0x09
	opSLTI    = 0x0A
	opSLTIU   = 0x0B
	opANDI    = 0x0C
	opORI     = 0x0D
	opXORI    = 0x0E
	opLUI     = 0x0F
	opLB      = 0x20
	opLH      = 0x21
	opLW      = 0x23
	opLBU     = 0x24
	opLHU     = 0x25
	opSB      = 0x28
	opSH      = 0x29
	opSW      = 0x2B
)

// SPECIAL function values (instruction bits 5..0 when opcode == 0).
const (
	fnSLL     = 0x00
	fnSRL     = 0x02
	fnSRA     = 0x03
	fnSLLV    = 0x04
	fnSRLV    = 0x06
	fnSRAV    = 0x07
	fnJR      = 0x08
	fnJALR    = 0x09
	fnSYSCALL = 0x0C
	fnMFHI    = 0x10
	fnMTHI    = 0x11
	fnMFLO    = 0x12
	fnMTLO    = 0x13
	fnMULT    = 0x18
	fnMULTU   = 0x19
	fnDIV     = 0x1A
	fnDIVU    = 0x1B
	fnADD     = 0x20
	fnADDU    = 0x21
	fnSUB     = 0x22
	fnSUBU    = 0x23
	fnAND     = 0x24
	fnOR      = 0x25
	fnXOR     = 0x26
	fnNOR     = 0x27
	fnSLT     = 0x2A
	fnSLTU    = 0x2B
)

// REGIMM rt values.
const (
	rtBLTZ = 0x00
	rtBGEZ = 0x01
)

// Inst is a decoded instruction.
type Inst struct {
	Raw    uint32
	Op     uint8
	Rs     uint8
	Rt     uint8
	Rd     uint8
	Shamt  uint8
	Funct  uint8
	Imm    uint16 // raw immediate (sign/zero extension is per-op)
	Target uint32 // 26-bit jump target field
}

// Decode splits a raw instruction word into fields.
func Decode(raw uint32) Inst {
	return Inst{
		Raw:    raw,
		Op:     uint8(raw >> 26),
		Rs:     uint8(raw >> 21 & 0x1F),
		Rt:     uint8(raw >> 16 & 0x1F),
		Rd:     uint8(raw >> 11 & 0x1F),
		Shamt:  uint8(raw >> 6 & 0x1F),
		Funct:  uint8(raw & 0x3F),
		Imm:    uint16(raw & 0xFFFF),
		Target: raw & 0x03FF_FFFF,
	}
}

// SImm returns the sign-extended immediate.
func (i Inst) SImm() int32 { return int32(int16(i.Imm)) }

// EncodeR builds an R-type instruction word.
func EncodeR(funct, rs, rt, rd, shamt uint8) uint32 {
	return uint32(rs&0x1F)<<21 | uint32(rt&0x1F)<<16 | uint32(rd&0x1F)<<11 |
		uint32(shamt&0x1F)<<6 | uint32(funct&0x3F)
}

// EncodeI builds an I-type instruction word.
func EncodeI(op, rs, rt uint8, imm uint16) uint32 {
	return uint32(op&0x3F)<<26 | uint32(rs&0x1F)<<21 | uint32(rt&0x1F)<<16 | uint32(imm)
}

// EncodeJ builds a J-type instruction word.
func EncodeJ(op uint8, target uint32) uint32 {
	return uint32(op&0x3F)<<26 | target&0x03FF_FFFF
}

// RegName returns the canonical "$name" of a register number.
func RegName(r uint8) string {
	return "$" + regNames[r&0x1F]
}

// RegNumber parses a register reference: "$t0", "$8", or "t0". Bare
// numbers without the dollar sign are rejected so immediates cannot be
// silently misread as register numbers.
func RegNumber(s string) (uint8, error) {
	dollar := len(s) > 0 && s[0] == '$'
	if dollar {
		s = s[1:]
	}
	if s == "" {
		return 0, fmt.Errorf("mips: empty register name")
	}
	if s[0] >= '0' && s[0] <= '9' {
		if !dollar {
			return 0, fmt.Errorf("mips: numeric register %q needs a $ prefix", s)
		}
		n := 0
		for _, c := range s {
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("mips: bad register %q", s)
			}
			n = n*10 + int(c-'0')
		}
		if n > 31 {
			return 0, fmt.Errorf("mips: register number %d out of range", n)
		}
		return uint8(n), nil
	}
	for i, n := range regNames {
		if n == s {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("mips: unknown register %q", s)
}

// Syscall numbers (in $v0 at the syscall instruction), following the
// SPIM convention for console I/O plus HORNET's network interface.
const (
	SysPrintInt  = 1
	SysPrintStr  = 4
	SysExit      = 10
	SysPrintChar = 11
	SysCycle     = 30 // $v0 = low 32 bits of the current cycle
	SysNetSend   = 60 // a0=dst node, a1=buf, a2=len bytes; DMA, non-blocking unless queue full
	SysNetPoll   = 61 // v0 = source node of a waiting packet, or -1
	SysNetRecv   = 62 // a0=src node, a1=buf, a2=max len; v0 = len or -1 (non-blocking)
	SysNetRecvB  = 63 // as SysNetRecv but blocks until a packet arrives
	SysMyID      = 64 // v0 = this core's node ID
	SysNumCores  = 65 // v0 = total node count
)

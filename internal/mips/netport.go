package mips

import (
	"hornet/internal/noc"
)

// ClassUser tags MPI-style application packets on the network.
const ClassUser uint8 = 4

// NetPort is the core-side network interface (paper §II-D2): sends are
// DMA-like — the syscall captures the buffer and returns while the port
// streams packets into the network — and receives are assembled into
// per-source FIFO queues the program polls. Backpressure is modeled by a
// bounded DMA queue on top of the router's bounded injector window, so a
// sender eventually stalls when its destination stops draining (the
// feedback loop trace-driven simulation lacks, Fig 12).
type NetPort struct {
	node       noc.NodeID
	offer      func(noc.Packet)
	routerLoad func() int // router injector queue length
	maxPending int        // DMA queue bound
	maxRouterQ int        // injector-queue bound before DMA stalls

	sendQ []noc.Packet
	recvQ []recvPkt

	Sent     uint64
	Received uint64
}

type recvPkt struct {
	src  noc.NodeID
	data []byte
}

// NewNetPort builds a port. offer injects packets at this tile;
// routerLoad reports the router's injector queue length.
func NewNetPort(node noc.NodeID, offer func(noc.Packet), routerLoad func() int) *NetPort {
	return &NetPort{
		node:       node,
		offer:      offer,
		routerLoad: routerLoad,
		maxPending: 4,
		maxRouterQ: 2,
	}
}

// TrySend queues a message for DMA transmission; it reports false when
// the DMA queue is full (the syscall then stalls the core and retries).
func (np *NetPort) TrySend(dst noc.NodeID, data []byte) bool {
	if len(np.sendQ) >= np.maxPending {
		return false
	}
	payload := append([]byte(nil), data...)
	np.sendQ = append(np.sendQ, noc.Packet{
		Flow:    noc.MakeFlow(np.node, dst, ClassUser),
		Dst:     dst,
		Flits:   1 + (len(payload)+7)/8,
		Payload: payload,
	})
	return true
}

// Tick advances the DMA engine: at most one packet moves into the router
// injector per cycle, and only while the injector queue is short.
func (np *NetPort) Tick(cycle uint64) {
	if len(np.sendQ) == 0 || np.routerLoad() >= np.maxRouterQ {
		return
	}
	np.offer(np.sendQ[0])
	copy(np.sendQ, np.sendQ[1:])
	np.sendQ = np.sendQ[:len(np.sendQ)-1]
	np.Sent++
}

// ReceivePacket implements the router delivery callback for user packets.
func (np *NetPort) ReceivePacket(p noc.Packet, cycle uint64) {
	data, _ := p.Payload.([]byte)
	np.recvQ = append(np.recvQ, recvPkt{src: p.Src, data: data})
	np.Received++
}

// Poll returns the source of the oldest waiting packet, or false.
func (np *NetPort) Poll() (noc.NodeID, bool) {
	if len(np.recvQ) == 0 {
		return 0, false
	}
	return np.recvQ[0].src, true
}

// Recv dequeues the oldest packet from src (or from anyone if src < 0).
func (np *NetPort) Recv(src noc.NodeID) ([]byte, bool) {
	for i, r := range np.recvQ {
		if src >= 0 && r.src != src {
			continue
		}
		np.recvQ = append(np.recvQ[:i], np.recvQ[i+1:]...)
		return r.data, true
	}
	return nil, false
}

// Idle reports whether the DMA engine has nothing queued.
func (np *NetPort) Idle() bool { return len(np.sendQ) == 0 }

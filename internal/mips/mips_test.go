package mips

import (
	"strings"
	"testing"
)

// runLocal executes a program on a single core with local memory until it
// halts or maxCycles elapse.
func runLocal(t *testing.T, src string, maxCycles int) *Core {
	t.Helper()
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := NewCore(0, 1, img, nil, nil)
	for i := 0; i < maxCycles && !c.Halted(); i++ {
		c.Tick(uint64(i))
	}
	if !c.Halted() {
		t.Fatalf("program did not halt in %d cycles (pc=%#x)", maxCycles, c.PC)
	}
	return c
}

func TestArithmeticAndPrint(t *testing.T) {
	c := runLocal(t, `
main:
	li   $t0, 6
	li   $t1, 7
	mul  $t2, $t0, $t1
	move $a0, $t2
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if got := c.Console(); got != "42" {
		t.Fatalf("console = %q, want 42", got)
	}
}

func TestLoadsStoresAndData(t *testing.T) {
	c := runLocal(t, `
	.data
vals:	.word 10, 20, 30, 40
sum:	.word 0
	.text
main:
	la   $t0, vals
	li   $t1, 4      # count
	li   $t2, 0      # sum
loop:
	lw   $t3, 0($t0)
	addu $t2, $t2, $t3
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, loop
	la   $t4, sum
	sw   $t2, 0($t4)
	move $a0, $t2
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if got := c.Console(); got != "100" {
		t.Fatalf("console = %q, want 100", got)
	}
	sumAddr := uint32(0)
	img, _ := Assemble(".data\nx: .word 0\n") // dummy to silence linters
	_ = img
	// Find "sum" via a fresh assembly of the same source.
	v, err := c.RAM().Read(symbolOf(t, `
	.data
vals:	.word 10, 20, 30, 40
sum:	.word 0
`, "sum"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("sum in memory = %d, want 100", v)
	}
	_ = sumAddr
}

func symbolOf(t *testing.T, src, name string) uint32 {
	t.Helper()
	img, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := img.Symbols[name]
	if !ok {
		t.Fatalf("symbol %q not found", name)
	}
	return a
}

func TestBranchesAndComparisons(t *testing.T) {
	c := runLocal(t, `
main:
	li   $t0, -5
	li   $t1, 3
	blt  $t0, $t1, ok1
	li   $v0, 10
	syscall
ok1:
	bgt  $t1, $t0, ok2
	li   $v0, 10
	syscall
ok2:
	bltz $t0, ok3
	li   $v0, 10
	syscall
ok3:
	li   $a0, 1
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if got := c.Console(); got != "1" {
		t.Fatalf("console = %q, want 1", got)
	}
}

func TestSignedUnsignedLoads(t *testing.T) {
	c := runLocal(t, `
	.data
b:	.byte 0xFF
	.align 1
h:	.half 0x8000
	.text
main:
	la   $t0, b
	lb   $t1, 0($t0)    # -1
	lbu  $t2, 0($t0)    # 255
	la   $t0, h
	lh   $t3, 0($t0)    # -32768
	lhu  $t4, 0($t0)    # 32768
	addu $a0, $t1, $t2  # -1 + 255 = 254
	addu $a0, $a0, $t3  # 254 - 32768 = -32514
	addu $a0, $a0, $t4  # -32514 + 32768 = 254
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if got := c.Console(); got != "254" {
		t.Fatalf("console = %q, want 254", got)
	}
}

func TestFunctionsAndStack(t *testing.T) {
	// Recursive factorial exercises jal/jr and stack discipline.
	c := runLocal(t, `
main:
	li   $a0, 6
	jal  fact
	move $a0, $v0
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
fact:
	addiu $sp, $sp, -8
	sw   $ra, 4($sp)
	sw   $a0, 0($sp)
	li   $v0, 1
	blez $a0, fact_ret
	addiu $a0, $a0, -1
	jal  fact
	lw   $a0, 0($sp)
	mul  $v0, $v0, $a0
fact_ret:
	lw   $ra, 4($sp)
	addiu $sp, $sp, 8
	jr   $ra
`, 10_000)
	if got := c.Console(); got != "720" {
		t.Fatalf("console = %q, want 720", got)
	}
}

func TestHiLoUnit(t *testing.T) {
	c := runLocal(t, `
main:
	li   $t0, 100000
	li   $t1, 100000
	multu $t0, $t1      # 10^10 = 0x2540BE400
	mfhi $t2            # 2
	mflo $t3            # 0x540BE400
	move $a0, $t2
	li   $v0, 1
	syscall
	li   $a0, 32
	li   $v0, 11
	syscall
	li   $t4, 7
	li   $t5, 3
	div  $t4, $t5
	mflo $a0            # 2
	li   $v0, 1
	syscall
	mfhi $a0            # 1
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if got := c.Console(); got != "2 21" {
		t.Fatalf("console = %q, want %q", got, "2 21")
	}
}

func TestPrintString(t *testing.T) {
	c := runLocal(t, `
	.data
msg:	.asciiz "hello, hornet\n"
	.text
main:
	la   $a0, msg
	li   $v0, 4
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if got := c.Console(); got != "hello, hornet\n" {
		t.Fatalf("console = %q", got)
	}
}

func TestAssembleDecodeRoundTrip(t *testing.T) {
	img, err := Assemble(`
main:
	addu $t0, $t1, $t2
	sll  $t3, $t4, 5
	lw   $s0, 12($sp)
	beq  $t0, $t1, main
	jal  main
`)
	if err != nil {
		t.Fatal(err)
	}
	text := img.Segments[0].Data
	wants := []struct {
		idx            int
		op, rs, rt, rd uint8
		funct, shamt   uint8
	}{
		{0, opSpecial, 9, 10, 8, fnADDU, 0},
		{1, opSpecial, 0, 12, 11, fnSLL, 5},
	}
	for _, w := range wants {
		raw := uint32(text[4*w.idx]) | uint32(text[4*w.idx+1])<<8 |
			uint32(text[4*w.idx+2])<<16 | uint32(text[4*w.idx+3])<<24
		in := Decode(raw)
		if in.Op != w.op || in.Rs != w.rs || in.Rt != w.rt || in.Rd != w.rd ||
			in.Funct != w.funct || in.Shamt != w.shamt {
			t.Fatalf("inst %d decoded %+v, want %+v", w.idx, in, w)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus $t0, $t1",
		"add $t0, $t1",                             // wrong arity
		"lw $t0, 4($nosuchreg)",                    // bad register
		"beq $t0, $t1, missing",                    // undefined label
		"main: .word\naddi $t0, $t0, 1\nmain: nop", // duplicate label
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestSyscallIdentity(t *testing.T) {
	img, err := Assemble(`
main:
	li  $v0, 64
	syscall
	move $a0, $v0
	li  $v0, 1
	syscall
	li  $a0, 47
	li  $v0, 11
	syscall
	li  $v0, 65
	syscall
	move $a0, $v0
	li  $v0, 1
	syscall
	li  $v0, 10
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCore(5, 16, img, nil, nil)
	for i := 0; i < 1000 && !c.Halted(); i++ {
		c.Tick(uint64(i))
	}
	if got := c.Console(); got != "5/16" {
		t.Fatalf("console = %q, want 5/16", got)
	}
}

func TestRAMAlignment(t *testing.T) {
	r := NewRAM()
	if _, err := r.Read(3, 4); err == nil {
		t.Fatal("misaligned word read succeeded")
	}
	if err := r.Write(1, 2, 7); err == nil {
		t.Fatal("misaligned half write succeeded")
	}
	if err := r.Write(0x1000, 4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(0x1000, 4)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("read back %#x, %v", v, err)
	}
	// Byte order: little endian.
	if b := r.ByteAt(0x1000); b != 0xEF {
		t.Fatalf("low byte %#x, want 0xEF", b)
	}
}

func TestConsolePseudoOps(t *testing.T) {
	// not / neg / move pseudo expansions.
	c := runLocal(t, `
main:
	li   $t0, 5
	neg  $t1, $t0      # -5
	not  $t2, $0       # -1
	addu $a0, $t1, $t2 # -6
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`, 1000)
	if !strings.Contains(c.Console(), "-6") {
		t.Fatalf("console = %q, want -6", c.Console())
	}
}

package mips

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"hornet/internal/noc"
	"hornet/internal/snapshot"
)

// This file implements checkpoint save/restore for the MIPS frontend:
// architectural core state (registers, PC, HI/LO, halt/exit, the
// in-flight data access, console output), the private RAM as a page
// delta against the loaded program image, and the network port's DMA
// send queue and receive FIFOs (whose packets carry []byte payloads
// through the snapshot payload codec). Loads validate the program-image
// fingerprint and core identity, returning *snapshot.MismatchError for
// state saved under a different program or placement.

// ImageFingerprint hashes a program image (entry point plus segment
// addresses and bytes) into the guard value checked on restore.
func ImageFingerprint(img *Image) uint32 {
	crc := crc32.NewIEEE()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], img.Entry)
	crc.Write(b[:])
	for _, s := range img.Segments {
		binary.LittleEndian.PutUint32(b[:], s.Addr)
		crc.Write(b[:])
		crc.Write(s.Data)
	}
	return crc.Sum32()
}

// pageMatchesBaseline reports whether a materialized page is redundant:
// equal to the image's page, or all-zero where the image has none.
func (r *RAM) pageMatchesBaseline(key uint32, page []byte) bool {
	if b, ok := r.baseline[key]; ok {
		return bytes.Equal(page, b)
	}
	for _, v := range page {
		if v != 0 {
			return false
		}
	}
	return true
}

// SaveState serializes the RAM as a page delta against the loaded image.
func (r *RAM) SaveState(w *snapshot.Writer) {
	keys := make([]uint32, 0, len(r.pages))
	for k, p := range r.pages {
		if !r.pageMatchesBaseline(k, p) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.Uint32(k)
		w.Bytes(r.pages[k])
	}
}

// LoadState resets the RAM to the loaded image and applies the delta.
func (r *RAM) LoadState(rd *snapshot.Reader) error {
	n := rd.Count(1 << 20)
	r.pages = make(map[uint32][]byte, len(r.baseline)+n)
	for k, p := range r.baseline {
		r.pages[k] = append([]byte(nil), p...)
	}
	for i := 0; i < n; i++ {
		k := rd.Uint32()
		page := rd.ByteSlice()
		if rd.Err() != nil {
			break
		}
		if len(page) != pageSize {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"RAM page %#x holds %d bytes, page size is %d", k, len(page), pageSize)}
		}
		r.pages[k] = page
	}
	return rd.Err()
}

// SaveState serializes the network port: the DMA send queue (packets
// with their payload buffers), the per-source receive FIFO, and the
// transfer counters.
func (np *NetPort) SaveState(w *snapshot.Writer) error {
	w.Int(len(np.sendQ))
	for _, p := range np.sendQ {
		if err := noc.EncodePacket(w, p); err != nil {
			return err
		}
	}
	w.Int(len(np.recvQ))
	for _, rp := range np.recvQ {
		w.Int32(int32(rp.src))
		w.Bytes(rp.data)
	}
	w.Uint64(np.Sent)
	w.Uint64(np.Received)
	return nil
}

// LoadState restores port state saved by SaveState.
func (np *NetPort) LoadState(r *snapshot.Reader) error {
	n := r.Count(1 << 20)
	np.sendQ = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		np.sendQ = append(np.sendQ, noc.DecodePacket(r))
	}
	n = r.Count(1 << 20)
	np.recvQ = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		np.recvQ = append(np.recvQ, recvPkt{src: noc.NodeID(r.Int32()), data: r.ByteSlice()})
	}
	np.Sent = r.Uint64()
	np.Received = r.Uint64()
	return r.Err()
}

// SaveState serializes the complete core: identity guards (node, core
// count, image fingerprint), architectural state, the stalled data
// access, console output, private RAM delta, and the network port.
func (c *Core) SaveState(w *snapshot.Writer) error {
	w.Int32(int32(c.ID))
	w.Int(c.NumCores)
	w.Uint32(c.imgFP)
	for _, v := range c.Regs {
		w.Uint32(v)
	}
	w.Uint32(c.HI)
	w.Uint32(c.LO)
	w.Uint32(c.PC)
	w.Bytes(c.console.Bytes())
	w.Bool(c.halted)
	w.Uint32(c.exit)
	w.Bool(c.memBusy)
	w.Bool(c.memWrite)
	w.Uint32(c.memAddr)
	w.Int(c.memSize)
	w.Uint64(c.memWdata)
	w.Uint8(c.memDest)
	w.Bool(c.memSigned)
	w.Uint64(c.Instret)
	w.Uint64(c.StallCycles)
	c.ram.SaveState(w)
	w.Bool(c.net != nil)
	if c.net != nil {
		if err := c.net.SaveState(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores core state saved by SaveState into this (freshly
// built, identically configured) core.
func (c *Core) LoadState(r *snapshot.Reader) error {
	id := noc.NodeID(r.Int32())
	numCores := r.Int()
	imgFP := r.Uint32()
	if err := r.Err(); err != nil {
		return err
	}
	if id != c.ID || numCores != c.NumCores {
		return &snapshot.MismatchError{Field: "mips core identity",
			Got:  fmt.Sprintf("core %d of %d", id, numCores),
			Want: fmt.Sprintf("core %d of %d", c.ID, c.NumCores)}
	}
	if imgFP != c.imgFP {
		return &snapshot.MismatchError{Field: "mips program image",
			Got: fmt.Sprintf("%08x", imgFP), Want: fmt.Sprintf("%08x", c.imgFP)}
	}
	for i := range c.Regs {
		c.Regs[i] = r.Uint32()
	}
	c.HI = r.Uint32()
	c.LO = r.Uint32()
	c.PC = r.Uint32()
	console := r.ByteSlice()
	c.console.Reset()
	c.console.Write(console)
	c.halted = r.Bool()
	c.exit = r.Uint32()
	c.memBusy = r.Bool()
	c.memWrite = r.Bool()
	c.memAddr = r.Uint32()
	c.memSize = r.Int()
	c.memWdata = r.Uint64()
	c.memDest = r.Uint8()
	c.memSigned = r.Bool()
	if c.memBusy {
		// The stalled access's fields feed fixed-width load/store
		// helpers and the register file on completion; reject values
		// they would panic on.
		switch c.memSize {
		case 1, 2, 4:
		default:
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"mips core %d in-flight access size %d is not 1/2/4", c.ID, c.memSize)}
		}
		if c.memAddr&uint32(c.memSize-1) != 0 {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"mips core %d in-flight access at %#x is not %d-byte aligned", c.ID, c.memAddr, c.memSize)}
		}
		if c.memDest >= uint8(len(c.Regs)) {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"mips core %d in-flight access targets register %d", c.ID, c.memDest)}
		}
	}
	if !c.halted && c.PC&3 != 0 {
		return &snapshot.CorruptError{Detail: fmt.Sprintf(
			"mips core %d PC %#x is not word-aligned", c.ID, c.PC)}
	}
	c.Instret = r.Uint64()
	c.StallCycles = r.Uint64()
	if err := c.ram.LoadState(r); err != nil {
		return err
	}
	hasNet := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasNet != (c.net != nil) {
		return &snapshot.MismatchError{Field: "mips network port",
			Got: fmt.Sprint(hasNet), Want: fmt.Sprint(c.net != nil)}
	}
	if c.net != nil {
		if err := c.net.LoadState(r); err != nil {
			return err
		}
	}
	return r.Err()
}

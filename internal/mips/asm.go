package mips

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Default section base addresses (SPIM conventions).
const (
	TextBase = 0x0040_0000
	DataBase = 0x1001_0000
)

// Segment is a contiguous chunk of the assembled image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Image is the assembler output: loadable segments, the entry point
// (label "main" if present, else the first text address) and the symbol
// table (tests and argument patching).
type Image struct {
	Segments []Segment
	Entry    uint32
	Symbols  map[string]uint32
}

// Assemble translates MIPS assembly source into an Image. Supported
// syntax: labels ("name:"), directives (.text, .data, .word, .half,
// .byte, .asciiz, .ascii, .space, .align, .globl), the MIPS32 integer
// subset the core executes, and the common pseudo-instructions (li, la,
// move, nop, b, beqz, bnez, blt/bgt/ble/bge, mul, neg, not). Comments
// start with '#'. Branch targets are labels; loads/stores use the
// offset(register) form.
func Assemble(src string) (*Image, error) {
	a := &assembler{
		symbols: make(map[string]uint32),
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	img := &Image{Symbols: a.symbols}
	if len(a.text) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: TextBase, Data: a.text})
	}
	if len(a.data) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: DataBase, Data: a.data})
	}
	img.Entry = TextBase
	if m, ok := a.symbols["main"]; ok {
		img.Entry = m
	}
	return img, nil
}

type stmt struct {
	line   int
	mnem   string
	args   []string
	addr   uint32
	inText bool
}

type assembler struct {
	symbols map[string]uint32
	text    []byte
	data    []byte
	stmts   []stmt
}

func (a *assembler) run(src string) error {
	if err := a.pass1(src); err != nil {
		return err
	}
	return a.pass2()
}

// pass1 tokenizes, expands sizes, assigns addresses and collects labels.
func (a *assembler) pass1(src string) error {
	inText := true
	textPC := uint32(TextBase)
	dataPC := uint32(DataBase)
	pc := func() *uint32 {
		if inText {
			return &textPC
		}
		return &dataPC
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off any labels.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				break // a ':' inside an operand (none in our syntax, but be safe)
			}
			if _, dup := a.symbols[label]; dup {
				return fmt.Errorf("asm: line %d: duplicate label %q", lineNo+1, label)
			}
			a.symbols[label] = *pc()
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		mnem, rest := splitMnem(line)
		args := splitArgs(rest)
		s := stmt{line: lineNo + 1, mnem: mnem, args: args, inText: inText}
		switch mnem {
		case ".text":
			inText = true
			continue
		case ".data":
			inText = false
			continue
		case ".globl", ".global", ".ent", ".end":
			continue // accepted and ignored
		case ".align":
			n, err := parseInt(args, 0, s.line)
			if err != nil {
				return err
			}
			align := uint32(1) << uint(n)
			*pc() = (*pc() + align - 1) &^ (align - 1)
			base := uint32(TextBase)
			if !inText {
				base = DataBase
			}
			a.padTo(inText, *pc()-base)
			continue
		case ".word", ".half", ".byte", ".space", ".asciiz", ".ascii":
			s.addr = *pc()
			size, err := a.dataSize(&s)
			if err != nil {
				return err
			}
			*pc() += uint32(size)
			a.stmts = append(a.stmts, s)
			continue
		}
		if !inText {
			return fmt.Errorf("asm: line %d: instruction %q in .data section", s.line, mnem)
		}
		words, err := instWords(mnem, args, s.line)
		if err != nil {
			return err
		}
		s.addr = *pc()
		*pc() += uint32(4 * words)
		a.stmts = append(a.stmts, s)
	}
	return nil
}

// padTo grows a section buffer to at least size bytes (section-relative).
func (a *assembler) padTo(inText bool, size uint32) {
	if inText {
		for uint32(len(a.text)) < size {
			a.text = append(a.text, 0)
		}
	} else {
		for uint32(len(a.data)) < size {
			a.data = append(a.data, 0)
		}
	}
}

// dataSize computes a data directive's byte size (pass 1).
func (a *assembler) dataSize(s *stmt) (int, error) {
	switch s.mnem {
	case ".word":
		return 4 * len(s.args), nil
	case ".half":
		return 2 * len(s.args), nil
	case ".byte":
		return len(s.args), nil
	case ".space":
		n, err := parseInt(s.args, 0, s.line)
		if err != nil {
			return 0, err
		}
		return int(n), nil
	case ".asciiz", ".ascii":
		str, err := parseString(s.args, s.line)
		if err != nil {
			return 0, err
		}
		if s.mnem == ".asciiz" {
			return len(str) + 1, nil
		}
		return len(str), nil
	}
	return 0, fmt.Errorf("asm: line %d: unknown directive %q", s.line, s.mnem)
}

// instWords returns how many machine words a (possibly pseudo)
// instruction expands to.
func instWords(mnem string, args []string, line int) (int, error) {
	switch mnem {
	case "mul":
		// mul rd, rs, rt is two words; mul rd, rs, imm loads the
		// immediate through $at first (four words).
		if len(args) == 3 && isIntLiteral(args[2]) {
			return 4, nil
		}
		return 2, nil
	case "li", "la", "blt", "bgt", "ble", "bge":
		return 2, nil
	case "nop", "move", "b", "beqz", "bnez", "neg", "not", "syscall",
		"add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu",
		"sllv", "srlv", "srav", "sll", "srl", "sra",
		"addi", "addiu", "slti", "sltiu", "andi", "ori", "xori", "lui",
		"lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw",
		"beq", "bne", "blez", "bgtz", "bltz", "bgez",
		"j", "jal", "jr", "jalr",
		"mult", "multu", "div", "divu", "mfhi", "mflo", "mthi", "mtlo":
		return 1, nil
	}
	return 0, fmt.Errorf("asm: line %d: unknown mnemonic %q", line, mnem)
}

// pass2 encodes every statement.
func (a *assembler) pass2() error {
	for _, s := range a.stmts {
		if strings.HasPrefix(s.mnem, ".") {
			if err := a.emitData(&s); err != nil {
				return err
			}
			continue
		}
		words, err := a.encode(&s)
		if err != nil {
			return err
		}
		off := s.addr - TextBase
		a.padTo(true, off+uint32(4*len(words)))
		for i, w := range words {
			binary.LittleEndian.PutUint32(a.text[off+uint32(4*i):], w)
		}
	}
	return nil
}

func (a *assembler) emitData(s *stmt) error {
	off := s.addr - DataBase
	emit := func(b []byte) {
		a.padTo(false, off+uint32(len(b)))
		copy(a.data[off:], b)
	}
	switch s.mnem {
	case ".word":
		buf := make([]byte, 4*len(s.args))
		for i, arg := range s.args {
			v, err := a.value(arg, s.line)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(buf[4*i:], v)
		}
		emit(buf)
	case ".half":
		buf := make([]byte, 2*len(s.args))
		for i, arg := range s.args {
			v, err := a.value(arg, s.line)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
		}
		emit(buf)
	case ".byte":
		buf := make([]byte, len(s.args))
		for i, arg := range s.args {
			v, err := a.value(arg, s.line)
			if err != nil {
				return err
			}
			buf[i] = byte(v)
		}
		emit(buf)
	case ".space":
		n, err := parseInt(s.args, 0, s.line)
		if err != nil {
			return err
		}
		emit(make([]byte, n))
	case ".asciiz", ".ascii":
		str, err := parseString(s.args, s.line)
		if err != nil {
			return err
		}
		b := []byte(str)
		if s.mnem == ".asciiz" {
			b = append(b, 0)
		}
		emit(b)
	}
	return nil
}

// value resolves an integer literal or label to its value/address.
func (a *assembler) value(arg string, line int) (uint32, error) {
	if v, ok := a.symbols[arg]; ok {
		return v, nil
	}
	n, err := strconv.ParseInt(arg, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("asm: line %d: bad value %q", line, arg)
	}
	return uint32(int64(n)), nil
}

func (a *assembler) reg(arg string, line int) (uint8, error) {
	r, err := RegNumber(arg)
	if err != nil {
		return 0, fmt.Errorf("asm: line %d: %v", line, err)
	}
	return r, nil
}

// branchOff computes the PC-relative branch offset (in words) from the
// instruction at addr to a label.
func (a *assembler) branchOff(label string, addr uint32, line int) (uint16, error) {
	target, ok := a.symbols[label]
	if !ok {
		return 0, fmt.Errorf("asm: line %d: undefined label %q", line, label)
	}
	diff := int64(target) - int64(addr+4)
	if diff&3 != 0 {
		return 0, fmt.Errorf("asm: line %d: misaligned branch target %q", line, label)
	}
	words := diff >> 2
	if words < -(1<<15) || words >= 1<<15 {
		return 0, fmt.Errorf("asm: line %d: branch to %q out of range", line, label)
	}
	return uint16(words), nil
}

func (a *assembler) need(s *stmt, n int) error {
	if len(s.args) != n {
		return fmt.Errorf("asm: line %d: %s wants %d operands, got %d", s.line, s.mnem, n, len(s.args))
	}
	return nil
}

// encode translates one statement into machine words.
func (a *assembler) encode(s *stmt) ([]uint32, error) {
	switch s.mnem {
	case "nop":
		return []uint32{0}, nil
	case "syscall":
		return []uint32{EncodeR(fnSYSCALL, 0, 0, 0, 0)}, nil

	// Three-register ALU ops: op rd, rs, rt.
	case "add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		fns := map[string]uint8{"add": fnADD, "addu": fnADDU, "sub": fnSUB, "subu": fnSUBU,
			"and": fnAND, "or": fnOR, "xor": fnXOR, "nor": fnNOR, "slt": fnSLT, "sltu": fnSLTU}
		rd, e1 := a.reg(s.args[0], s.line)
		rs, e2 := a.reg(s.args[1], s.line)
		rt, e3 := a.reg(s.args[2], s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fns[s.mnem], rs, rt, rd, 0)}, nil

	// Variable shifts: op rd, rt, rs.
	case "sllv", "srlv", "srav":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		fns := map[string]uint8{"sllv": fnSLLV, "srlv": fnSRLV, "srav": fnSRAV}
		rd, e1 := a.reg(s.args[0], s.line)
		rt, e2 := a.reg(s.args[1], s.line)
		rs, e3 := a.reg(s.args[2], s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fns[s.mnem], rs, rt, rd, 0)}, nil

	// Immediate shifts: op rd, rt, shamt.
	case "sll", "srl", "sra":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		fns := map[string]uint8{"sll": fnSLL, "srl": fnSRL, "sra": fnSRA}
		rd, e1 := a.reg(s.args[0], s.line)
		rt, e2 := a.reg(s.args[1], s.line)
		sh, e3 := a.value(s.args[2], s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fns[s.mnem], 0, rt, rd, uint8(sh))}, nil

	// Immediate ALU ops: op rt, rs, imm.
	case "addi", "addiu", "slti", "sltiu", "andi", "ori", "xori":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		ops := map[string]uint8{"addi": opADDI, "addiu": opADDIU, "slti": opSLTI,
			"sltiu": opSLTIU, "andi": opANDI, "ori": opORI, "xori": opXORI}
		rt, e1 := a.reg(s.args[0], s.line)
		rs, e2 := a.reg(s.args[1], s.line)
		imm, e3 := a.value(s.args[2], s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(ops[s.mnem], rs, rt, uint16(imm))}, nil

	case "lui":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		rt, e1 := a.reg(s.args[0], s.line)
		imm, e2 := a.value(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(opLUI, 0, rt, uint16(imm))}, nil

	// Loads and stores: op rt, off(rs).
	case "lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		ops := map[string]uint8{"lb": opLB, "lbu": opLBU, "lh": opLH, "lhu": opLHU,
			"lw": opLW, "sb": opSB, "sh": opSH, "sw": opSW}
		rt, e1 := a.reg(s.args[0], s.line)
		off, base, e2 := a.memOperand(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(ops[s.mnem], base, rt, off)}, nil

	// Branches.
	case "beq", "bne":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		op := opBEQ
		if s.mnem == "bne" {
			op = opBNE
		}
		rs, e1 := a.reg(s.args[0], s.line)
		rt, e2 := a.reg(s.args[1], s.line)
		off, e3 := a.branchOff(s.args[2], s.addr, s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(uint8(op), rs, rt, off)}, nil
	case "blez", "bgtz":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		op := opBLEZ
		if s.mnem == "bgtz" {
			op = opBGTZ
		}
		rs, e1 := a.reg(s.args[0], s.line)
		off, e2 := a.branchOff(s.args[1], s.addr, s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(uint8(op), rs, 0, off)}, nil
	case "bltz", "bgez":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		rt := uint8(rtBLTZ)
		if s.mnem == "bgez" {
			rt = rtBGEZ
		}
		rs, e1 := a.reg(s.args[0], s.line)
		off, e2 := a.branchOff(s.args[1], s.addr, s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(opRegImm, rs, rt, off)}, nil

	// Jumps.
	case "j", "jal":
		if err := a.need(s, 1); err != nil {
			return nil, err
		}
		target, ok := a.symbols[s.args[0]]
		if !ok {
			return nil, fmt.Errorf("asm: line %d: undefined label %q", s.line, s.args[0])
		}
		op := uint8(opJ)
		if s.mnem == "jal" {
			op = opJAL
		}
		return []uint32{EncodeJ(op, target>>2)}, nil
	case "jr":
		if err := a.need(s, 1); err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fnJR, rs, 0, 0, 0)}, nil
	case "jalr":
		rs, err := a.reg(s.args[len(s.args)-1], s.line)
		if err != nil {
			return nil, err
		}
		rd := uint8(RegRA)
		if len(s.args) == 2 {
			if rd, err = a.reg(s.args[0], s.line); err != nil {
				return nil, err
			}
		}
		return []uint32{EncodeR(fnJALR, rs, 0, rd, 0)}, nil

	// HI/LO unit.
	case "mult", "multu", "div", "divu":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		fns := map[string]uint8{"mult": fnMULT, "multu": fnMULTU, "div": fnDIV, "divu": fnDIVU}
		rs, e1 := a.reg(s.args[0], s.line)
		rt, e2 := a.reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fns[s.mnem], rs, rt, 0, 0)}, nil
	case "mfhi", "mflo":
		if err := a.need(s, 1); err != nil {
			return nil, err
		}
		fn := uint8(fnMFHI)
		if s.mnem == "mflo" {
			fn = fnMFLO
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fn, 0, 0, rd, 0)}, nil
	case "mthi", "mtlo":
		if err := a.need(s, 1); err != nil {
			return nil, err
		}
		fn := uint8(fnMTHI)
		if s.mnem == "mtlo" {
			fn = fnMTLO
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fn, rs, 0, 0, 0)}, nil

	// Pseudo-instructions.
	case "li", "la":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		rt, e1 := a.reg(s.args[0], s.line)
		v, e2 := a.value(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{
			EncodeI(opLUI, 0, RegAT, uint16(v>>16)),
			EncodeI(opORI, RegAT, rt, uint16(v)),
		}, nil
	case "move":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		rd, e1 := a.reg(s.args[0], s.line)
		rs, e2 := a.reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fnADDU, rs, 0, rd, 0)}, nil
	case "neg":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		rd, e1 := a.reg(s.args[0], s.line)
		rs, e2 := a.reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fnSUB, 0, rs, rd, 0)}, nil
	case "not":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		rd, e1 := a.reg(s.args[0], s.line)
		rs, e2 := a.reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeR(fnNOR, rs, 0, rd, 0)}, nil
	case "b":
		if err := a.need(s, 1); err != nil {
			return nil, err
		}
		off, err := a.branchOff(s.args[0], s.addr, s.line)
		if err != nil {
			return nil, err
		}
		return []uint32{EncodeI(opBEQ, 0, 0, off)}, nil
	case "beqz", "bnez":
		if err := a.need(s, 2); err != nil {
			return nil, err
		}
		op := uint8(opBEQ)
		if s.mnem == "bnez" {
			op = opBNE
		}
		rs, e1 := a.reg(s.args[0], s.line)
		off, e2 := a.branchOff(s.args[1], s.addr, s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return []uint32{EncodeI(op, rs, 0, off)}, nil
	case "blt", "bgt", "ble", "bge":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		r1, e1 := a.reg(s.args[0], s.line)
		r2, e2 := a.reg(s.args[1], s.line)
		// The slt occupies the first word; the branch is at addr+4.
		off, e3 := a.branchOff(s.args[2], s.addr+4, s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		var slt uint32
		var br uint32
		switch s.mnem {
		case "blt": // rs < rt
			slt = EncodeR(fnSLT, r1, r2, RegAT, 0)
			br = EncodeI(opBNE, RegAT, 0, off)
		case "bge": // rs >= rt
			slt = EncodeR(fnSLT, r1, r2, RegAT, 0)
			br = EncodeI(opBEQ, RegAT, 0, off)
		case "bgt": // rs > rt  <=>  rt < rs
			slt = EncodeR(fnSLT, r2, r1, RegAT, 0)
			br = EncodeI(opBNE, RegAT, 0, off)
		case "ble": // rs <= rt  <=>  !(rt < rs)
			slt = EncodeR(fnSLT, r2, r1, RegAT, 0)
			br = EncodeI(opBEQ, RegAT, 0, off)
		}
		return []uint32{slt, br}, nil
	case "mul":
		if err := a.need(s, 3); err != nil {
			return nil, err
		}
		rd, e1 := a.reg(s.args[0], s.line)
		rs, e2 := a.reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		if isIntLiteral(s.args[2]) {
			v, err := a.value(s.args[2], s.line)
			if err != nil {
				return nil, err
			}
			return []uint32{
				EncodeI(opLUI, 0, RegAT, uint16(v>>16)),
				EncodeI(opORI, RegAT, RegAT, uint16(v)),
				EncodeR(fnMULT, rs, RegAT, 0, 0),
				EncodeR(fnMFLO, 0, 0, rd, 0),
			}, nil
		}
		rt, err := a.reg(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		return []uint32{
			EncodeR(fnMULT, rs, rt, 0, 0),
			EncodeR(fnMFLO, 0, 0, rd, 0),
		}, nil
	}
	return nil, fmt.Errorf("asm: line %d: unknown mnemonic %q", s.line, s.mnem)
}

// memOperand parses "off(reg)" or "(reg)" or a bare label/number with
// register $zero.
func (a *assembler) memOperand(arg string, line int) (uint16, uint8, error) {
	open := strings.IndexByte(arg, '(')
	if open < 0 {
		v, err := a.value(arg, line)
		if err != nil {
			return 0, 0, err
		}
		return uint16(v), RegZero, nil
	}
	if !strings.HasSuffix(arg, ")") {
		return 0, 0, fmt.Errorf("asm: line %d: bad memory operand %q", line, arg)
	}
	base, err := a.reg(arg[open+1:len(arg)-1], line)
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(arg[:open])
	if offStr == "" {
		return 0, base, nil
	}
	v, err := a.value(offStr, line)
	if err != nil {
		return 0, 0, err
	}
	return uint16(v), base, nil
}

func splitMnem(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

// splitArgs splits operands on commas, respecting quoted strings.
func splitArgs(rest string) []string {
	if rest == "" {
		return nil
	}
	var args []string
	depth := false // inside quotes
	cur := strings.Builder{}
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case c == '"':
			depth = !depth
			cur.WriteByte(c)
		case c == ',' && !depth:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		args = append(args, s)
	}
	return args
}

// isIntLiteral reports whether an operand is a numeric literal rather
// than a register or label reference.
func isIntLiteral(s string) bool {
	if s == "" || s[0] == '$' {
		return false
	}
	if s[0] == '-' || s[0] == '+' {
		s = s[1:]
	}
	return len(s) > 0 && s[0] >= '0' && s[0] <= '9'
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseInt(args []string, idx, line int) (int64, error) {
	if idx >= len(args) {
		return 0, fmt.Errorf("asm: line %d: missing operand", line)
	}
	v, err := strconv.ParseInt(args[idx], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("asm: line %d: bad integer %q", line, args[idx])
	}
	return v, nil
}

func parseString(args []string, line int) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("asm: line %d: string directive wants one operand", line)
	}
	s, err := strconv.Unquote(args[0])
	if err != nil {
		return "", fmt.Errorf("asm: line %d: bad string %s", line, args[0])
	}
	return s, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

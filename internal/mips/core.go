package mips

import (
	"bytes"
	"fmt"

	"hornet/internal/noc"
	"hornet/internal/sim"
)

// DataMem is the core's data-memory interface. A local RAM completes in
// one cycle; mem.L1 (MSI) and mem.NucaPort satisfy it structurally and
// stall the core for miss latencies.
type DataMem interface {
	Access(cycle uint64, write bool, addr uint32, size int, wdata uint64) (uint64, bool)
}

// LocalData adapts a private RAM to DataMem (MPI mode: no shared memory).
type LocalData struct{ RAM *RAM }

// Access implements DataMem with single-cycle completion.
func (l LocalData) Access(_ uint64, write bool, addr uint32, size int, wdata uint64) (uint64, bool) {
	if write {
		if err := l.RAM.Write(addr, size, uint32(wdata)); err != nil {
			panic(err)
		}
		return 0, true
	}
	v, err := l.RAM.Read(addr, size)
	if err != nil {
		panic(err)
	}
	return uint64(v), true
}

// Core is the single-cycle in-order MIPS core model. Instructions are
// fetched from the private image RAM (instruction traffic is not modeled,
// as in the paper's core); data accesses go through DataMem; network
// syscalls talk to the NetPort.
type Core struct {
	ID       noc.NodeID
	NumCores int

	Regs [32]uint32
	HI   uint32
	LO   uint32
	PC   uint32

	ram  *RAM // instruction memory (and console string source)
	data DataMem
	net  *NetPort

	console bytes.Buffer
	halted  bool
	exit    uint32

	// imgFP fingerprints the program image the core was built with; the
	// checkpoint loader refuses state saved under a different program.
	imgFP uint32

	// In-flight data access (core stalled on memory).
	memBusy   bool
	memWrite  bool
	memAddr   uint32
	memSize   int
	memWdata  uint64
	memDest   uint8
	memSigned bool

	Instret     uint64
	StallCycles uint64
}

// NewCore builds a core executing the given image.
func NewCore(id noc.NodeID, numCores int, img *Image, data DataMem, net *NetPort) *Core {
	ram := NewRAM()
	ram.LoadImage(img)
	c := &Core{ID: id, NumCores: numCores, ram: ram, data: data, net: net,
		PC: img.Entry, imgFP: ImageFingerprint(img)}
	if data == nil {
		c.data = LocalData{RAM: ram}
	}
	c.Regs[RegSP] = 0x7FFF_FFF0 // conventional stack top
	return c
}

// RAM exposes the private memory (tests, argument setup).
func (c *Core) RAM() *RAM { return c.ram }

// Net exposes the network port.
func (c *Core) Net() *NetPort { return c.net }

// Halted reports whether the program has exited.
func (c *Core) Halted() bool { return c.halted }

// ExitCode returns the value passed to the exit syscall.
func (c *Core) ExitCode() uint32 { return c.exit }

// Console returns everything printed so far.
func (c *Core) Console() string { return c.console.String() }

// NextEvent implements the fast-forward query: a running core acts every
// cycle; a halted one never again (its DMA queue may still drain, which
// the router's own NextEvent covers).
func (c *Core) NextEvent(now uint64) uint64 {
	if c.halted {
		return sim.NoEvent
	}
	return now + 1
}

// Tick executes at most one instruction (or continues a stalled one).
// Called once per cycle from the owning tile's transfer phase.
func (c *Core) Tick(cycle uint64) {
	if c.net != nil {
		c.net.Tick(cycle)
	}
	if c.halted {
		return
	}
	if c.memBusy {
		v, done := c.data.Access(cycle, c.memWrite, c.memAddr, c.memSize, c.memWdata)
		if !done {
			c.StallCycles++
			return
		}
		c.memBusy = false
		if !c.memWrite {
			c.writeLoad(v)
		}
		return
	}
	raw, err := c.ram.Read(c.PC, 4)
	if err != nil {
		panic(fmt.Sprintf("mips: core %d: bad PC %#x: %v", c.ID, c.PC, err))
	}
	c.execute(Decode(raw), cycle)
}

func (c *Core) writeLoad(v uint64) {
	val := uint32(v)
	if c.memSigned {
		switch c.memSize {
		case 1:
			val = uint32(int32(int8(val)))
		case 2:
			val = uint32(int32(int16(val)))
		}
	}
	c.setReg(c.memDest, val)
}

func (c *Core) setReg(r uint8, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// startAccess begins a data access; if it completes immediately the load
// result is written back in the same cycle (single-cycle core).
func (c *Core) startAccess(cycle uint64, write bool, addr uint32, size int, wdata uint64, dest uint8, signed bool) {
	c.memWrite, c.memAddr, c.memSize, c.memWdata = write, addr, size, wdata
	c.memDest, c.memSigned = dest, signed
	v, done := c.data.Access(cycle, write, addr, size, wdata)
	if !done {
		c.memBusy = true
		c.StallCycles++
		return
	}
	if !write {
		c.writeLoad(v)
	}
}

// execute runs one decoded instruction. Branch delay slots are not
// modeled (the assembler never schedules them), matching a simple
// single-cycle core.
func (c *Core) execute(in Inst, cycle uint64) {
	next := c.PC + 4
	rs, rt := c.Regs[in.Rs], c.Regs[in.Rt]
	simm := uint32(in.SImm())
	switch in.Op {
	case opSpecial:
		switch in.Funct {
		case fnSLL:
			c.setReg(in.Rd, rt<<in.Shamt)
		case fnSRL:
			c.setReg(in.Rd, rt>>in.Shamt)
		case fnSRA:
			c.setReg(in.Rd, uint32(int32(rt)>>in.Shamt))
		case fnSLLV:
			c.setReg(in.Rd, rt<<(rs&31))
		case fnSRLV:
			c.setReg(in.Rd, rt>>(rs&31))
		case fnSRAV:
			c.setReg(in.Rd, uint32(int32(rt)>>(rs&31)))
		case fnJR:
			next = rs
		case fnJALR:
			c.setReg(in.Rd, c.PC+4)
			next = rs
		case fnSYSCALL:
			if !c.syscall(cycle) {
				return // blocked: retry the syscall next cycle
			}
		case fnMFHI:
			c.setReg(in.Rd, c.HI)
		case fnMTHI:
			c.HI = rs
		case fnMFLO:
			c.setReg(in.Rd, c.LO)
		case fnMTLO:
			c.LO = rs
		case fnMULT:
			p := int64(int32(rs)) * int64(int32(rt))
			c.LO, c.HI = uint32(p), uint32(p>>32)
		case fnMULTU:
			p := uint64(rs) * uint64(rt)
			c.LO, c.HI = uint32(p), uint32(p>>32)
		case fnDIV:
			if rt != 0 {
				c.LO = uint32(int32(rs) / int32(rt))
				c.HI = uint32(int32(rs) % int32(rt))
			}
		case fnDIVU:
			if rt != 0 {
				c.LO = rs / rt
				c.HI = rs % rt
			}
		case fnADD, fnADDU:
			c.setReg(in.Rd, rs+rt)
		case fnSUB, fnSUBU:
			c.setReg(in.Rd, rs-rt)
		case fnAND:
			c.setReg(in.Rd, rs&rt)
		case fnOR:
			c.setReg(in.Rd, rs|rt)
		case fnXOR:
			c.setReg(in.Rd, rs^rt)
		case fnNOR:
			c.setReg(in.Rd, ^(rs | rt))
		case fnSLT:
			c.setReg(in.Rd, b2u(int32(rs) < int32(rt)))
		case fnSLTU:
			c.setReg(in.Rd, b2u(rs < rt))
		default:
			panic(fmt.Sprintf("mips: core %d: unimplemented funct %#x at %#x", c.ID, in.Funct, c.PC))
		}
	case opRegImm:
		switch in.Rt {
		case rtBLTZ:
			if int32(rs) < 0 {
				next = c.PC + 4 + simm<<2
			}
		case rtBGEZ:
			if int32(rs) >= 0 {
				next = c.PC + 4 + simm<<2
			}
		default:
			panic(fmt.Sprintf("mips: core %d: unimplemented regimm rt=%d", c.ID, in.Rt))
		}
	case opJ:
		next = (c.PC+4)&0xF000_0000 | in.Target<<2
	case opJAL:
		c.setReg(RegRA, c.PC+4)
		next = (c.PC+4)&0xF000_0000 | in.Target<<2
	case opBEQ:
		if rs == rt {
			next = c.PC + 4 + simm<<2
		}
	case opBNE:
		if rs != rt {
			next = c.PC + 4 + simm<<2
		}
	case opBLEZ:
		if int32(rs) <= 0 {
			next = c.PC + 4 + simm<<2
		}
	case opBGTZ:
		if int32(rs) > 0 {
			next = c.PC + 4 + simm<<2
		}
	case opADDI, opADDIU:
		c.setReg(in.Rt, rs+simm)
	case opSLTI:
		c.setReg(in.Rt, b2u(int32(rs) < in.SImm()))
	case opSLTIU:
		c.setReg(in.Rt, b2u(rs < simm))
	case opANDI:
		c.setReg(in.Rt, rs&uint32(in.Imm))
	case opORI:
		c.setReg(in.Rt, rs|uint32(in.Imm))
	case opXORI:
		c.setReg(in.Rt, rs^uint32(in.Imm))
	case opLUI:
		c.setReg(in.Rt, uint32(in.Imm)<<16)
	case opLB:
		c.startAccess(cycle, false, rs+simm, 1, 0, in.Rt, true)
	case opLBU:
		c.startAccess(cycle, false, rs+simm, 1, 0, in.Rt, false)
	case opLH:
		c.startAccess(cycle, false, rs+simm, 2, 0, in.Rt, true)
	case opLHU:
		c.startAccess(cycle, false, rs+simm, 2, 0, in.Rt, false)
	case opLW:
		c.startAccess(cycle, false, rs+simm, 4, 0, in.Rt, false)
	case opSB:
		c.startAccess(cycle, true, rs+simm, 1, uint64(rt&0xFF), 0, false)
	case opSH:
		c.startAccess(cycle, true, rs+simm, 2, uint64(rt&0xFFFF), 0, false)
	case opSW:
		c.startAccess(cycle, true, rs+simm, 4, uint64(rt), 0, false)
	default:
		panic(fmt.Sprintf("mips: core %d: unimplemented opcode %#x at %#x", c.ID, in.Op, c.PC))
	}
	c.Instret++
	c.PC = next
}

// syscall executes the system call in $v0; it returns false when the call
// must block (the PC is not advanced, so it retries next cycle).
func (c *Core) syscall(cycle uint64) bool {
	a0, a1, a2 := c.Regs[RegA0], c.Regs[RegA1], c.Regs[RegA2]
	switch c.Regs[RegV0] {
	case SysPrintInt:
		fmt.Fprintf(&c.console, "%d", int32(a0))
	case SysPrintStr:
		for addr := a0; ; addr++ {
			b := c.ram.ByteAt(addr)
			if b == 0 {
				break
			}
			c.console.WriteByte(b)
		}
	case SysPrintChar:
		c.console.WriteByte(byte(a0))
	case SysExit:
		c.halted = true
		c.exit = a0
	case SysCycle:
		c.setReg(RegV0, uint32(cycle))
	case SysMyID:
		c.setReg(RegV0, uint32(c.ID))
	case SysNumCores:
		c.setReg(RegV0, uint32(c.NumCores))
	case SysNetSend:
		if c.net == nil {
			panic(fmt.Sprintf("mips: core %d: net_send without network port", c.ID))
		}
		buf := c.ram.ReadBytes(a1, int(a2))
		if !c.net.TrySend(noc.NodeID(a0), buf) {
			c.StallCycles++
			return false // DMA queue full: block
		}
		c.setReg(RegV0, 0)
	case SysNetPoll:
		if src, ok := c.net.Poll(); ok {
			c.setReg(RegV0, uint32(src))
		} else {
			c.setReg(RegV0, ^uint32(0))
		}
	case SysNetRecv, SysNetRecvB:
		data, ok := c.net.Recv(noc.NodeID(int32(a0)))
		if !ok {
			if c.Regs[RegV0] == SysNetRecvB {
				c.StallCycles++
				return false // block until a packet arrives
			}
			c.setReg(RegV0, ^uint32(0))
			break
		}
		n := len(data)
		if n > int(a2) {
			n = int(a2)
		}
		c.ram.WriteBytes(a1, data[:n])
		c.setReg(RegV0, uint32(n))
	default:
		panic(fmt.Sprintf("mips: core %d: unknown syscall %d at %#x", c.ID, c.Regs[RegV0], c.PC))
	}
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

package mips

import (
	"encoding/binary"
	"fmt"
)

// RAM is a sparse page-backed flat 32-bit memory used as a core's private
// store (MPI mode) and as the instruction memory in every mode.
// Little-endian, matching the assembler's data directives.
//
// The loaded program image is kept as the RAM's checkpoint baseline:
// snapshots encode only pages that diverged from it, and restores reset
// to the baseline before applying the delta (see state.go).
type RAM struct {
	pages    map[uint32][]byte
	baseline map[uint32][]byte
}

const pageBits = 12
const pageSize = 1 << pageBits

// NewRAM returns an empty memory; all bytes read as zero.
func NewRAM() *RAM {
	return &RAM{pages: make(map[uint32][]byte), baseline: map[uint32][]byte{}}
}

func (r *RAM) page(addr uint32) []byte {
	key := addr >> pageBits
	p := r.pages[key]
	if p == nil {
		p = make([]byte, pageSize)
		r.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (r *RAM) ByteAt(addr uint32) byte {
	return r.page(addr)[addr&(pageSize-1)]
}

// SetByte stores a byte at addr.
func (r *RAM) SetByte(addr uint32, v byte) {
	r.page(addr)[addr&(pageSize-1)] = v
}

// Read returns size bytes starting at addr as a little-endian integer.
// size must be 1, 2 or 4 and the access must be naturally aligned.
func (r *RAM) Read(addr uint32, size int) (uint32, error) {
	if err := checkAlign(addr, size); err != nil {
		return 0, err
	}
	off := addr & (pageSize - 1)
	p := r.page(addr)
	switch size {
	case 1:
		return uint32(p[off]), nil
	case 2:
		return uint32(binary.LittleEndian.Uint16(p[off:])), nil
	case 4:
		return binary.LittleEndian.Uint32(p[off:]), nil
	}
	return 0, fmt.Errorf("mips: bad access size %d", size)
}

// Write stores size bytes at addr.
func (r *RAM) Write(addr uint32, size int, v uint32) error {
	if err := checkAlign(addr, size); err != nil {
		return err
	}
	off := addr & (pageSize - 1)
	p := r.page(addr)
	switch size {
	case 1:
		p[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(p[off:], v)
	default:
		return fmt.Errorf("mips: bad access size %d", size)
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (r *RAM) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = r.ByteAt(addr + uint32(i))
	}
	return out
}

// WriteBytes stores data starting at addr.
func (r *RAM) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		r.SetByte(addr+uint32(i), b)
	}
}

func checkAlign(addr uint32, size int) error {
	if size != 1 && size != 2 && size != 4 {
		return fmt.Errorf("mips: bad access size %d", size)
	}
	if addr&uint32(size-1) != 0 {
		return fmt.Errorf("mips: misaligned %d-byte access at %#x", size, addr)
	}
	return nil
}

// LoadImage writes a program image (segments from the assembler) and
// seals the resulting content as the RAM's checkpoint baseline.
func (r *RAM) LoadImage(img *Image) {
	for _, s := range img.Segments {
		r.WriteBytes(s.Addr, s.Data)
	}
	r.baseline = make(map[uint32][]byte, len(r.pages))
	for key, p := range r.pages {
		r.baseline[key] = append([]byte(nil), p...)
	}
}

// Package fsatomic is the repo's one implementation of the
// write-atomically idiom: temp file in the target directory, write,
// close, rename. A killed process never leaves a partial file under
// the final name. Result caches, warmup snapshots, checkpoint blobs
// and the snapshot container all persist through it.
package fsatomic

import (
	"io"
	"os"
	"path/filepath"
)

// Write creates path atomically, streaming the content through fill.
// The target directory is created as needed; on any error the temp
// file is removed and the previous file at path (if any) is untouched.
func Write(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+"-*.tmp")
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

// WriteFile is Write for in-memory content.
func WriteFile(path string, b []byte) error {
	return Write(path, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
}

package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"hornet/internal/noc"
	"hornet/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := &Trace{}
	tr.Add(10, 1, 2, 8)
	tr.AddPeriodic(100, 3, 4, 2, 50, 5)
	tr.Add(5, 0, 7, 1)
	tr.Sort()

	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != 3 {
		t.Fatalf("round trip lost events: %d", len(back.Events))
	}
	if back.Events[0].Cycle != 5 || back.Events[2].Period != 50 || back.Events[2].Count != 5 {
		t.Fatalf("round trip corrupted: %+v", back.Events)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"1 2 3",     // too few fields
		"1 2 3 4 5", // five fields
		"a b c d",   // non-numeric
		"1 2 3 0",   // zero flits
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded", c)
		}
	}
	// Comments and blanks are fine.
	if _, err := Read(strings.NewReader("# header\n\n1 2 3 4\n")); err != nil {
		t.Fatal(err)
	}
}

func TestScaleTime(t *testing.T) {
	tr := &Trace{}
	tr.AddPeriodic(100, 0, 1, 8, 20, 3)
	tr.ScaleTime(10)
	e := tr.Events[0]
	if e.Cycle != 10 || e.Period != 2 {
		t.Fatalf("scaled event: %+v", e)
	}
	// Degenerate periods clamp to 1 rather than collapsing.
	tr2 := &Trace{}
	tr2.AddPeriodic(100, 0, 1, 8, 5, 3)
	tr2.ScaleTime(10)
	if tr2.Events[0].Period != 1 {
		t.Fatalf("period collapsed to %d", tr2.Events[0].Period)
	}
}

func TestMaxCycle(t *testing.T) {
	tr := &Trace{}
	tr.Add(10, 0, 1, 8)
	tr.AddPeriodic(100, 0, 1, 8, 50, 4) // last at 100+3*50 = 250
	if mc := tr.MaxCycle(); mc != 250 {
		t.Fatalf("MaxCycle = %d, want 250", mc)
	}
}

func TestInjectorSchedulesInOrder(t *testing.T) {
	tr := &Trace{}
	tr.Add(30, 2, 5, 8)
	tr.Add(10, 2, 6, 8)
	tr.AddPeriodic(20, 2, 7, 4, 15, 2)
	tr.Add(10, 3, 1, 8) // other node's event: ignored by node 2's injector

	inj := NewInjector(2, tr, 0)
	if inj.Pending() != 3 {
		t.Fatalf("pending %d, want 3", inj.Pending())
	}
	var got []struct {
		cycle uint64
		dst   noc.NodeID
	}
	for c := uint64(0); c < 60; c++ {
		inj.Tick(c, func(p noc.Packet) {
			got = append(got, struct {
				cycle uint64
				dst   noc.NodeID
			}{c, p.Dst})
		})
	}
	want := []struct {
		cycle uint64
		dst   noc.NodeID
	}{{10, 6}, {20, 7}, {30, 5}, {35, 7}}
	if len(got) != len(want) {
		t.Fatalf("got %d injections %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("injection %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if inj.Pending() != 0 {
		t.Fatalf("injector still pending %d", inj.Pending())
	}
}

func TestInjectorNextEvent(t *testing.T) {
	tr := &Trace{}
	tr.Add(100, 0, 1, 8)
	inj := NewInjector(0, tr, 0)
	if ev := inj.NextEvent(10); ev != 100 {
		t.Fatalf("NextEvent(10) = %d, want 100", ev)
	}
	inj.Tick(100, func(noc.Packet) {})
	if ev := inj.NextEvent(100); ev != sim.NoEvent {
		t.Fatalf("exhausted injector NextEvent = %d, want NoEvent", ev)
	}
}

func TestInjectorSkipsSelfTraffic(t *testing.T) {
	tr := &Trace{}
	tr.Add(1, 4, 4, 8) // src == dst
	inj := NewInjector(4, tr, 0)
	count := 0
	inj.Tick(5, func(noc.Packet) { count++ })
	if count != 0 {
		t.Fatal("self-addressed trace event was injected")
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(cycles []uint16, flits uint8) bool {
		tr := &Trace{}
		for i, c := range cycles {
			tr.Add(uint64(c), noc.NodeID(i%16), noc.NodeID((i+1)%16), int(flits%32)+1)
		}
		var sb strings.Builder
		if tr.Write(&sb) != nil {
			return false
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return len(back.Events) == len(tr.Events)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package trace implements HORNET's trace-driven injection (paper
// §II-D1): a text-format trace of injection events — each with a
// timestamp, source, destination (defining the flow), packet size and an
// optional repeat period — plus a per-node injector that offers packets to
// the network at the scheduled times, relying on the router's injector
// queue for retransmission when the network cannot accept them.
package trace

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/snapshot"
)

// Event is one trace record. Count > 1 with Period > 0 repeats the
// injection (a periodic flow).
type Event struct {
	Cycle  uint64
	Src    noc.NodeID
	Dst    noc.NodeID
	Flits  int
	Period uint64
	Count  uint64
}

// Trace is an ordered set of events.
type Trace struct {
	Events []Event
}

// Sort orders events by (cycle, src, dst) for stable output.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		a, b := t.Events[i], t.Events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// Add appends a one-shot injection event.
func (t *Trace) Add(cycle uint64, src, dst noc.NodeID, flits int) {
	t.Events = append(t.Events, Event{Cycle: cycle, Src: src, Dst: dst, Flits: flits, Count: 1})
}

// AddPeriodic appends a repeating flow: count injections, period cycles apart.
func (t *Trace) AddPeriodic(cycle uint64, src, dst noc.NodeID, flits int, period, count uint64) {
	t.Events = append(t.Events, Event{Cycle: cycle, Src: src, Dst: dst, Flits: flits, Period: period, Count: count})
}

// Write emits the trace in the text format:
//
//	# comment
//	<cycle> <src> <dst> <flits> [<period> <count>]
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# hornet trace v1: cycle src dst flits [period count]")
	for _, e := range t.Events {
		if e.Period > 0 && e.Count > 1 {
			fmt.Fprintf(bw, "%d %d %d %d %d %d\n", e.Cycle, e.Src, e.Dst, e.Flits, e.Period, e.Count)
		} else {
			fmt.Fprintf(bw, "%d %d %d %d\n", e.Cycle, e.Src, e.Dst, e.Flits)
		}
	}
	return bw.Flush()
}

// Read parses the text format produced by Write.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 && len(fields) != 6 {
			return nil, fmt.Errorf("trace: line %d: want 4 or 6 fields, got %d", lineNo, len(fields))
		}
		vals := make([]uint64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			vals[i] = v
		}
		e := Event{
			Cycle: vals[0],
			Src:   noc.NodeID(vals[1]),
			Dst:   noc.NodeID(vals[2]),
			Flits: int(vals[3]),
			Count: 1,
		}
		if len(fields) == 6 {
			e.Period, e.Count = vals[4], vals[5]
		}
		if e.Flits < 1 {
			return nil, fmt.Errorf("trace: line %d: packet needs >= 1 flit", lineNo)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}

// ScaleTime divides all timestamps and periods by div (the paper runs the
// traced x86 cores on a clock 10x faster than the network, §III).
func (t *Trace) ScaleTime(div uint64) {
	if div <= 1 {
		return
	}
	for i := range t.Events {
		t.Events[i].Cycle /= div
		t.Events[i].Period /= div
		if t.Events[i].Period == 0 && t.Events[i].Count > 1 {
			t.Events[i].Period = 1
		}
	}
}

// MaxCycle returns the last scheduled injection cycle in the trace.
func (t *Trace) MaxCycle() uint64 {
	var m uint64
	for _, e := range t.Events {
		last := e.Cycle
		if e.Count > 1 {
			last += (e.Count - 1) * e.Period
		}
		if last > m {
			m = last
		}
	}
	return m
}

// pendingEvent is a scheduled occurrence in the injector's heap.
type pendingEvent struct {
	next      uint64
	remaining uint64
	ev        Event
}

type eventHeap []pendingEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].next < h[j].next }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(pendingEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Injector replays one node's share of a trace, offering packets at their
// scheduled cycles. The router's pending queue provides the paper's
// injector-side buffering and retransmission.
type Injector struct {
	node  noc.NodeID
	class uint8
	heap  eventHeap
}

// NewInjector builds the injector for node from the whole trace.
func NewInjector(node noc.NodeID, t *Trace, class uint8) *Injector {
	inj := &Injector{node: node, class: class}
	for _, e := range t.Events {
		if e.Src != node {
			continue
		}
		count := e.Count
		if count == 0 {
			count = 1
		}
		inj.heap = append(inj.heap, pendingEvent{next: e.Cycle, remaining: count, ev: e})
	}
	heap.Init(&inj.heap)
	return inj
}

// Pending returns the number of scheduled occurrences left (periodic
// events count once until exhausted).
func (inj *Injector) Pending() int { return len(inj.heap) }

// Tick offers all packets scheduled at or before cycle.
func (inj *Injector) Tick(cycle uint64, offer func(noc.Packet)) {
	for len(inj.heap) > 0 && inj.heap[0].next <= cycle {
		pe := inj.heap[0]
		if pe.ev.Dst != inj.node {
			offer(noc.Packet{
				Flow:  noc.MakeFlow(inj.node, pe.ev.Dst, inj.class),
				Dst:   pe.ev.Dst,
				Flits: pe.ev.Flits,
			})
		}
		pe.remaining--
		if pe.remaining == 0 || pe.ev.Period == 0 {
			heap.Pop(&inj.heap)
			continue
		}
		pe.next += pe.ev.Period
		inj.heap[0] = pe
		heap.Fix(&inj.heap, 0)
	}
}

// SaveState serializes the injector's replay position: the pending
// heap, slot by slot. The heap's slice layout is a deterministic
// function of the push/pop history, so saving it verbatim keeps the
// encoding stable and restores an identical replay order.
func (inj *Injector) SaveState(w *snapshot.Writer) {
	w.Int(len(inj.heap))
	for _, pe := range inj.heap {
		w.Uint64(pe.next)
		w.Uint64(pe.remaining)
		w.Uint64(pe.ev.Cycle)
		w.Int32(int32(pe.ev.Src))
		w.Int32(int32(pe.ev.Dst))
		w.Int(pe.ev.Flits)
		w.Uint64(pe.ev.Period)
		w.Uint64(pe.ev.Count)
	}
}

// LoadState restores a replay position saved by SaveState, replacing
// whatever schedule the injector currently holds.
func (inj *Injector) LoadState(r *snapshot.Reader) error {
	n := r.Count(1 << 26)
	h := make(eventHeap, 0, n)
	for i := 0; i < n; i++ {
		h = append(h, pendingEvent{
			next:      r.Uint64(),
			remaining: r.Uint64(),
			ev: Event{
				Cycle:  r.Uint64(),
				Src:    noc.NodeID(r.Int32()),
				Dst:    noc.NodeID(r.Int32()),
				Flits:  r.Int(),
				Period: r.Uint64(),
				Count:  r.Uint64(),
			},
		})
	}
	if err := r.Err(); err != nil {
		return err
	}
	inj.heap = h
	return nil
}

// NextEvent implements the fast-forward query.
func (inj *Injector) NextEvent(now uint64) uint64 {
	if len(inj.heap) == 0 {
		return sim.NoEvent
	}
	next := inj.heap[0].next
	if next <= now {
		return now + 1
	}
	return next
}

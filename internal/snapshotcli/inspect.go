// Package snapshotcli implements the `snapshot <file>` inspection
// subcommand shared by hornet-exp and hornet-serve: it decodes a
// checkpoint or warmup snapshot, verifies its checksum and version, and
// prints the guard hash, clock, section layout, and — for hornet-serve
// checkpoints — the embedded job progress record.
package snapshotcli

import (
	"encoding/json"
	"fmt"
	"io"

	"hornet/internal/snapshot"
)

// Inspect runs the subcommand over its argument list and returns the
// process exit code. Structured snapshot errors (corrupt, version skew)
// print as diagnostics rather than raw decode failures.
func Inspect(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: snapshot <file.snap>")
		return 2
	}
	path := args[0]
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "snapshot: %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s\n", path)
	fmt.Fprint(stdout, snap.Describe())
	// hornet-serve checkpoints carry a job progress record; surface it.
	if snap.Has("serve-meta") {
		if r, err := snap.Open("serve-meta"); err == nil {
			var meta map[string]any
			if json.Unmarshal(r.ByteSlice(), &meta) == nil {
				b, _ := json.MarshalIndent(meta, "", "  ")
				fmt.Fprintf(stdout, "serve job progress:\n%s\n", b)
			}
		}
	}
	return 0
}

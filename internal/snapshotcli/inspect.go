// Package snapshotcli implements the `snapshot <file>` inspection
// subcommand shared by hornet-exp and hornet-serve: it decodes a
// checkpoint or warmup snapshot, verifies its checksum and version, and
// prints the guard hash, clock, section layout, the frontend manifest
// (which frontends' state the snapshot carries, component and payload
// counts), and — for hornet-serve checkpoints — the embedded job
// progress record.
package snapshotcli

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hornet/internal/snapshot"
)

// Inspect runs the subcommand over its argument list and returns the
// process exit code. Structured snapshot errors (corrupt, version skew)
// print as diagnostics rather than raw decode failures.
func Inspect(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: snapshot <file.snap>")
		return 2
	}
	path := args[0]
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "snapshot: %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s\n", path)
	fmt.Fprint(stdout, snap.Describe())
	describeManifest(snap, stdout)
	// hornet-serve checkpoints carry a job progress record; surface it.
	if snap.Has("serve-meta") {
		if r, err := snap.Open("serve-meta"); err == nil {
			var meta map[string]any
			if json.Unmarshal(r.ByteSlice(), &meta) == nil {
				b, _ := json.MarshalIndent(meta, "", "  ")
				fmt.Fprintf(stdout, "serve job progress:\n%s\n", b)
			}
		}
	}
	return 0
}

// describeManifest renders the frontend manifest, when present: which
// frontends' state the snapshot carries and the component/payload
// counts. Old (pre-manifest) snapshots simply omit the block; a corrupt
// manifest is reported but does not fail the inspection (the typed
// sections are the authoritative state).
func describeManifest(snap *snapshot.Snapshot, out io.Writer) {
	m, ok, err := snap.ReadManifest()
	if err != nil {
		fmt.Fprintf(out, "manifest:       unreadable (%v)\n", err)
		return
	}
	if !ok {
		return
	}
	fmt.Fprintf(out, "frontends:      %s (%d nodes)\n", strings.Join(m.Frontends, ", "), m.Nodes)
	counts := []struct {
		name string
		n    int
	}{
		{"traffic generators", m.Generators},
		{"trace injectors", m.Injectors},
		{"mips cores", m.MIPSCores},
		{"mem fabric tiles", m.MemTiles},
		{"trace-mode MCs", m.TraceMCs},
	}
	for _, c := range counts {
		if c.n > 0 {
			fmt.Fprintf(out, "  %-18s %d\n", c.name, c.n)
		}
	}
	fmt.Fprintf(out, "  %-18s %d (%d payload-bearing)\n", "in-flight flits", m.InFlightFlits, m.Payloads)
}

package snapshotcli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot produces a fully deterministic snapshot of a
// MIPS-over-MSI system mid-run: fixed config, fixed seed, fixed cycle,
// so its inspection output is stable byte for byte.
func goldenSnapshot(t *testing.T, path string) {
	t.Helper()
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	cfg.Engine.Workers = 1
	cfg.Engine.Seed = 0xC0FFEE
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mc := *config.DefaultMemory()
	fab, err := sys.AttachMemory(mc)
	if err != nil {
		t.Fatalf("AttachMemory: %v", err)
	}
	img, err := mips.Assemble(workloads.SharedPingPongSource(40, 3))
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
	sys.Run(500)
	if err := sys.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
}

// TestInspectGolden locks the `snapshot <file>` output format — the
// section table, the frontend manifest with its counts, and the payload
// totals — against a golden file. Regenerate with `go test -update`
// after an intentional format or encoding change.
func TestInspectGolden(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "golden.snap")
	goldenSnapshot(t, path)

	var out, errOut bytes.Buffer
	if code := Inspect([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("Inspect exit code %d, stderr %q", code, errOut.String())
	}
	// The first line echoes the (temp) path; everything after it must be
	// deterministic.
	_, got, ok := strings.Cut(out.String(), "\n")
	if !ok {
		t.Fatalf("output has no path line: %q", out.String())
	}

	goldenPath := filepath.Join("testdata", "inspect_mips.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/snapshotcli -update` to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("inspection output drifted from golden file (re-run with -update if intentional):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestInspectErrors: usage and corrupt-file paths exit non-zero with a
// diagnostic instead of panicking.
func TestInspectErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Inspect(nil, &out, &errOut); code != 2 {
		t.Errorf("no-arg exit code = %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := Inspect([]string{bad}, &out, &errOut); code != 1 {
		t.Errorf("corrupt-file exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "corrupt") {
		t.Errorf("corrupt-file diagnostic %q does not mention corruption", errOut.String())
	}
}

package traffic

import (
	"testing"

	"hornet/internal/config"
	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/topology"
)

func mesh(t *testing.T, w, h int) *topology.Topology {
	t.Helper()
	topo, err := topology.New(config.TopologyConfig{Kind: config.TopoMesh, Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPermutationPatterns(t *testing.T) {
	topo := mesh(t, 8, 8)
	rng := sim.NewRNG(1)
	cases := []struct {
		pattern string
		src     noc.NodeID
		want    noc.NodeID
	}{
		{config.PatternTranspose, 1, 8}, // (1,0) -> (0,1)
		{config.PatternTranspose, 8, 1},
		{config.PatternBitComplement, 0, 63},
		{config.PatternBitComplement, 5, 58},
		{config.PatternShuffle, 1, 2},  // rotate-left on 6 bits
		{config.PatternShuffle, 32, 1}, // MSB wraps to LSB
		{config.PatternNeighbor, 7, 0}, // (7,0) -> (0,0)
		{config.PatternTornado, 0, 3},  // (0+ceil(8/2)-1) mod 8 = 3
	}
	for _, c := range cases {
		p, err := NewPattern(config.TrafficConfig{Pattern: c.pattern}, topo)
		if err != nil {
			t.Fatalf("%s: %v", c.pattern, err)
		}
		if got := p.Dst(c.src, rng); got != c.want {
			t.Errorf("%s: Dst(%d) = %d, want %d", c.pattern, c.src, got, c.want)
		}
	}
}

func TestUniformNeverSelf(t *testing.T) {
	topo := mesh(t, 4, 4)
	p, err := NewPattern(config.TrafficConfig{Pattern: config.PatternUniform}, topo)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	for i := 0; i < 10_000; i++ {
		src := noc.NodeID(i % 16)
		if p.Dst(src, rng) == src {
			t.Fatal("uniform pattern returned self")
		}
	}
}

func TestBitCompRequiresPowerOfTwo(t *testing.T) {
	topo := mesh(t, 3, 3)
	if _, err := NewPattern(config.TrafficConfig{Pattern: config.PatternBitComplement}, topo); err == nil {
		t.Fatal("bit-complement on 9 nodes accepted")
	}
}

func TestHotspotBias(t *testing.T) {
	topo := mesh(t, 4, 4)
	p, err := NewPattern(config.TrafficConfig{
		Pattern: config.PatternHotspot, HotNodes: []int{5}, HotFrac: 0.8,
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	hits := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if p.Dst(0, rng) == 5 {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.7 || frac > 0.9 {
		t.Fatalf("hotspot fraction %.3f, want ~0.8", frac)
	}
}

func TestGeneratorBernoulliRate(t *testing.T) {
	topo := mesh(t, 4, 4)
	g, err := NewGenerator(0, config.TrafficConfig{
		Pattern: config.PatternUniform, InjectionRate: 0.1,
	}, topo, 8, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for c := uint64(0); c < 50_000; c++ {
		g.Tick(c, func(p noc.Packet) {
			count++
			if p.Flits != 8 {
				t.Fatalf("packet flits %d, want 8", p.Flits)
			}
		})
	}
	rate := float64(count) / 50_000
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("injection rate %.4f, want ~0.1", rate)
	}
}

func TestBurstGeneratorQuietGaps(t *testing.T) {
	topo := mesh(t, 4, 4)
	g, err := NewGenerator(0, config.TrafficConfig{
		Pattern: config.PatternBitComplement, InjectionRate: 1.0,
		BurstLen: 10, BurstGap: 90,
	}, topo, 8, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(0); c < 300; c++ {
		injected := false
		g.Tick(c, func(noc.Packet) { injected = true })
		inBurst := c%100 < 10
		if injected && !inBurst {
			t.Fatalf("injection at cycle %d outside burst window", c)
		}
	}
	// NextEvent from inside a gap jumps to the next burst.
	if ev := g.NextEvent(50); ev != 100 {
		t.Fatalf("NextEvent(50) = %d, want 100", ev)
	}
	if ev := g.NextEvent(5); ev != 6 {
		t.Fatalf("NextEvent(5) = %d, want 6", ev)
	}
}

func TestH264CBRSpacing(t *testing.T) {
	topo := mesh(t, 4, 4)
	g, err := NewGenerator(3, config.TrafficConfig{
		Pattern: config.PatternH264, InjectionRate: 0.01,
	}, topo, 8, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	var times []uint64
	for c := uint64(0); c < 1000; c++ {
		g.Tick(c, func(noc.Packet) { times = append(times, c) })
	}
	if len(times) != 10 {
		t.Fatalf("CBR injected %d packets in 1000 cycles at period 100", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 100 {
			t.Fatalf("CBR spacing %d, want 100", times[i]-times[i-1])
		}
	}
	// NextEvent predicts the schedule exactly.
	if ev := g.NextEvent(times[0]); ev != times[1] {
		t.Fatalf("NextEvent(%d) = %d, want %d", times[0], ev, times[1])
	}
}

func TestStoppedGeneratorGoesSilent(t *testing.T) {
	topo := mesh(t, 4, 4)
	g, _ := NewGenerator(0, config.TrafficConfig{
		Pattern: config.PatternUniform, InjectionRate: 1.0,
	}, topo, 8, sim.NewRNG(7))
	g.Stop()
	g.Tick(0, func(noc.Packet) { t.Fatal("stopped generator injected") })
	if g.NextEvent(0) != sim.NoEvent {
		t.Fatal("stopped generator reports future events")
	}
}

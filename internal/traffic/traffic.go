// Package traffic implements HORNET's synthetic network-only workloads:
// the classic address permutations (transpose, bit-complement, shuffle,
// tornado, neighbour), uniform-random and hotspot traffic, and an
// H.264-decoder-style constant-bit-rate profile, each drivable by a
// Bernoulli or bursty injection process (paper Table I, Figs 6-7).
package traffic

import (
	"fmt"

	"hornet/internal/config"
	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/snapshot"
	"hornet/internal/topology"
)

// Pattern maps a source node to a destination for each generated packet.
// Implementations must be deterministic given the RNG stream.
type Pattern interface {
	Name() string
	// Dst returns the destination for a packet from src, or src itself to
	// indicate "no packet" (self-addressed traffic is skipped).
	Dst(src noc.NodeID, rng *sim.RNG) noc.NodeID
}

// permutation is a fixed node->node map.
type permutation struct {
	name string
	dst  []noc.NodeID
}

func (p *permutation) Name() string { return p.name }

func (p *permutation) Dst(src noc.NodeID, _ *sim.RNG) noc.NodeID { return p.dst[src] }

// uniformPattern draws destinations uniformly over all other nodes.
type uniformPattern struct{ n int }

func (u *uniformPattern) Name() string { return config.PatternUniform }

func (u *uniformPattern) Dst(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	d := noc.NodeID(rng.Intn(u.n - 1))
	if d >= src {
		d++
	}
	return d
}

// hotspotPattern sends a fraction of traffic to designated hot nodes.
type hotspotPattern struct {
	n    int
	hot  []noc.NodeID
	frac float64
}

func (h *hotspotPattern) Name() string { return config.PatternHotspot }

func (h *hotspotPattern) Dst(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	if rng.Bernoulli(h.frac) {
		d := h.hot[rng.Intn(len(h.hot))]
		if d != src {
			return d
		}
	}
	d := noc.NodeID(rng.Intn(h.n - 1))
	if d >= src {
		d++
	}
	return d
}

// NewPattern builds the named pattern over the given topology.
func NewPattern(tc config.TrafficConfig, t *topology.Topology) (Pattern, error) {
	n := t.Nodes()
	switch tc.Pattern {
	case config.PatternUniform:
		return &uniformPattern{n: n}, nil
	case config.PatternHotspot:
		hot := make([]noc.NodeID, len(tc.HotNodes))
		for i, h := range tc.HotNodes {
			hot[i] = noc.NodeID(h)
		}
		frac := tc.HotFrac
		if frac <= 0 {
			frac = 0.5
		}
		return &hotspotPattern{n: n, hot: hot, frac: frac}, nil
	case config.PatternTranspose:
		return permute(tc.Pattern, n, func(src int) int {
			x, y := t.XY(noc.NodeID(src))
			if x >= t.Height || y >= t.Width {
				return src // non-square meshes: fixed point outside the square core
			}
			return int(t.NodeAt(y, x))
		}), nil
	case config.PatternBitComplement:
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("traffic: bit-complement needs a power-of-two node count, got %d", n)
		}
		return permute(tc.Pattern, n, func(src int) int { return (n - 1) ^ src }), nil
	case config.PatternShuffle:
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("traffic: shuffle needs a power-of-two node count, got %d", n)
		}
		bits := 0
		for 1<<bits < n {
			bits++
		}
		return permute(tc.Pattern, n, func(src int) int {
			return ((src << 1) | (src >> (bits - 1))) & (n - 1)
		}), nil
	case config.PatternTornado:
		return permute(tc.Pattern, n, func(src int) int {
			x, y := t.XY(noc.NodeID(src))
			k := t.Width
			return int(t.NodeAt((x+(k+1)/2-1)%k, y))
		}), nil
	case config.PatternNeighbor:
		return permute(tc.Pattern, n, func(src int) int {
			x, y := t.XY(noc.NodeID(src))
			return int(t.NodeAt((x+1)%t.Width, y))
		}), nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", tc.Pattern)
	}
}

func permute(name string, n int, f func(int) int) Pattern {
	p := &permutation{name: name, dst: make([]noc.NodeID, n)}
	for i := 0; i < n; i++ {
		p.dst[i] = noc.NodeID(f(i))
	}
	return p
}

// Offer is the router-injection callback handed to generators each cycle.
type Offer func(noc.Packet)

// Generator is one node's traffic source in network-only mode.
type Generator struct {
	node    noc.NodeID
	pattern Pattern
	rng     *sim.RNG

	rate     float64
	pktFlits int
	class    uint8

	// Bursty injection: active for burstLen cycles, idle for burstGap.
	burstLen, burstGap int

	// CBR mode (H.264 profile): one packet every period cycles, with a
	// per-node phase offset so nodes do not inject in lockstep.
	cbr    bool
	period uint64
	phase  uint64

	stopped bool
}

// NewGenerator builds a node's synthetic source from its traffic config.
func NewGenerator(node noc.NodeID, tc config.TrafficConfig, t *topology.Topology, avgFlits int, rng *sim.RNG) (*Generator, error) {
	g := &Generator{
		node:     node,
		rng:      rng,
		rate:     tc.InjectionRate,
		pktFlits: tc.PacketFlits,
		burstLen: tc.BurstLen,
		burstGap: tc.BurstGap,
	}
	if g.pktFlits <= 0 {
		g.pktFlits = avgFlits
	}
	if tc.Pattern == config.PatternH264 {
		// The H.264 decoder profile: low-volume, evenly spaced packets on
		// fixed flows (a pipeline between stages mapped across nodes).
		g.cbr = true
		if tc.InjectionRate <= 0 {
			return nil, fmt.Errorf("traffic: h264 profile needs injection_rate > 0")
		}
		g.period = uint64(1.0 / tc.InjectionRate)
		if g.period == 0 {
			g.period = 1
		}
		g.phase = uint64(node) % g.period
		n := t.Nodes()
		g.pattern = permute(config.PatternH264, n, func(src int) int {
			// Fixed pipeline partner: a mid-distance deterministic hop.
			return (src + n/3 + 1) % n
		})
		return g, nil
	}
	p, err := NewPattern(tc, t)
	if err != nil {
		return nil, err
	}
	g.pattern = p
	return g, nil
}

// Stop halts further injection (used to drain the network at run end).
func (g *Generator) Stop() { g.stopped = true }

// SaveState serializes the generator's mutable state. Everything else
// about a generator is a pure function of (config, cycle, RNG stream),
// and the RNG is the owning tile's, checkpointed with the tile.
func (g *Generator) SaveState(w *snapshot.Writer) {
	w.Bool(g.stopped)
}

// LoadState restores state saved by SaveState.
func (g *Generator) LoadState(r *snapshot.Reader) error {
	g.stopped = r.Bool()
	return r.Err()
}

// Tick implements the tile generator contract: called once per cycle
// during the owning tile's transfer phase.
func (g *Generator) Tick(cycle uint64, offer Offer) {
	if g.stopped {
		return
	}
	if g.cbr {
		if (cycle+g.phase)%g.period == 0 {
			g.emit(offer)
		}
		return
	}
	if g.burstLen > 0 {
		span := uint64(g.burstLen + g.burstGap)
		if cycle%span >= uint64(g.burstLen) {
			return // idle gap between coordinated bursts
		}
	}
	if g.rng.Bernoulli(g.rate) {
		g.emit(offer)
	}
}

func (g *Generator) emit(offer Offer) {
	dst := g.pattern.Dst(g.node, g.rng)
	if dst == g.node {
		return
	}
	offer(noc.Packet{
		Flow:  noc.MakeFlow(g.node, dst, g.class),
		Dst:   dst,
		Flits: g.pktFlits,
	})
}

// NextEvent implements the fast-forward query: the earliest cycle after
// now at which this generator might inject.
func (g *Generator) NextEvent(now uint64) uint64 {
	if g.stopped || (g.rate <= 0 && !g.cbr) {
		return sim.NoEvent
	}
	if g.cbr {
		// Next multiple of period aligned to our phase, strictly after now.
		next := now + 1
		rem := (next + g.phase) % g.period
		if rem != 0 {
			next += g.period - rem
		}
		return next
	}
	if g.burstLen > 0 {
		span := uint64(g.burstLen + g.burstGap)
		next := now + 1
		if pos := next % span; pos >= uint64(g.burstLen) {
			next += span - pos // jump to the next burst start
		}
		return next
	}
	return now + 1
}

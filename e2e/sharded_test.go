package e2e

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

// TestShardedFleetE2E is the space-parallel drill against real
// processes: one simulation sharded across two hornet-worker processes
// in cycle-lockstep, with spare workers idle. Mid-run — after the group
// has promoted a stable checkpoint set — the test SIGKILLs one member's
// worker. The group must roll back to the stable cycle (survivor
// included), the dead member must be re-dispatched to a spare seeded
// from the coordinator's stable blob, and the finished document must be
// byte-identical to an uninterrupted single-engine in-process execution
// of the same request. The drill runs twice, once per payload class:
// synthetic traffic and a MIPS application workload.
func TestShardedFleetE2E(t *testing.T) {
	if os.Getenv("HORNET_E2E") == "" {
		t.Skip("set HORNET_E2E=1 to run the process-level sharded drill")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"hornet/cmd/hornet-serve", "hornet/cmd/hornet-worker")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}

	start("hornet-serve",
		"-addr", addr, "-jobs", "1", "-budget", "2",
		"-checkpoint-every", "500", "-worker-ttl", "2s")
	waitHealthy(t, base)

	// Four workers: two drills each SIGKILL one, and a sharded group
	// needs two live members plus a spare for the migration to land on.
	workers := make(map[string]*exec.Cmd, 4)
	for i := 1; i <= 4; i++ {
		id := fmt.Sprintf("e2e-s%d", i)
		workers[id] = start("hornet-worker", "-coordinator", base, "-id", id, "-capacity", "1")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	c := client.New(base)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws, err := c.Workers(ctx)
		if err == nil && len(ws) == len(workers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d workers never registered (last: %v, %v)", len(workers), ws, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	synthCfg := config.Default()
	synthCfg.Topology.Width, synthCfg.Topology.Height = 4, 4
	synthCfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	synthCfg.WarmupCycles = 400
	synthCfg.AnalyzedCycles = 60_000

	mipsCfg := config.Default()
	mipsCfg.Topology.Width, mipsCfg.Topology.Height = 4, 4

	drills := []service.SubmitRequest{
		{Name: "e2e-sharded-synth", Config: &synthCfg, Seed: 17, Shards: 2},
		{Name: "e2e-sharded-mips", Seed: 9, Shards: 2,
			Mips: &service.MipsSpec{Workload: "pingpong", Rounds: 400, Config: mipsCfg}},
	}
	for _, req := range drills {
		runShardedKillDrill(t, ctx, c, workers, req)
	}
}

// runShardedKillDrill submits one sharded request, SIGKILLs a member's
// worker after the group has checkpointed, and requires migration plus
// byte-identity against the unsharded in-process reference.
func runShardedKillDrill(t *testing.T, ctx context.Context, c *client.Client,
	workers map[string]*exec.Cmd, req service.SubmitRequest) {
	t.Helper()

	info, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("%s: submit: %v", req.Name, err)
	}

	// Stable promotion needs BOTH members' blobs at the same cycle; the
	// job's checkpoint counter only sees the root member's uploads, so
	// wait for its second one — by then the first cadence's set is
	// complete (members run in cycle-lockstep).
	deadline := time.Now().Add(3 * time.Minute)
	for {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatalf("%s: job poll: %v", req.Name, err)
		}
		if ji.Terminal() {
			t.Fatalf("%s: job finished before the kill; state %+v (grow the workload)", req.Name, ji)
		}
		if ji.Checkpoints >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: no checkpointed progress; job %+v", req.Name, ji)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL whichever live worker executes a member shard.
	ws, err := c.Workers(ctx)
	if err != nil {
		t.Fatalf("%s: workers: %v", req.Name, err)
	}
	victim := ""
	for _, w := range ws {
		for _, task := range w.Tasks {
			if strings.Contains(task, "-s") {
				victim = w.ID
			}
		}
	}
	if victim == "" {
		t.Fatalf("%s: no worker holds a member shard despite checkpoint progress", req.Name)
	}
	t.Logf("%s: SIGKILLing %s mid-run (member shard holder)", req.Name, victim)
	if err := workers[victim].Process.Kill(); err != nil {
		t.Fatalf("%s: kill %s: %v", req.Name, victim, err)
	}
	workers[victim].Wait()
	delete(workers, victim)

	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("%s: wait: %v", req.Name, err)
	}
	if final.State != service.StateDone {
		t.Fatalf("%s: sharded job state after migration = %s (%s)", req.Name, final.State, final.Error)
	}
	_, sharded, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("%s: result: %v", req.Name, err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("%s: stats: %v", req.Name, err)
	}
	if st.Fleet.TasksRequeued < 1 || st.Fleet.WorkersLost < 1 {
		t.Errorf("%s: fleet stats show no shard migration: %+v", req.Name, st.Fleet)
	}

	// The golden contract: one simulation, sharded across processes,
	// killed and migrated mid-run — and the served bytes still match an
	// uninterrupted single-engine in-process execution.
	unsharded := req
	unsharded.Shards = 0
	ref, err := service.Execute(ctx, unsharded, service.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatalf("%s: reference execute: %v", req.Name, err)
	}
	if !bytes.Equal(sharded, ref.Doc) {
		t.Errorf("%s: sharded+migrated document differs from single-engine run:\nsharded: %s\nref:     %s",
			req.Name, sharded, ref.Doc)
	}
	fmt.Printf("e2e: %s survived killing %s; requeued=%d, lost=%d, doc bytes identical\n",
		req.Name, victim, st.Fleet.TasksRequeued, st.Fleet.WorkersLost)
}

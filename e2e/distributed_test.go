// Package e2e holds process-level end-to-end drills that build the real
// binaries and kill real processes. They are opt-in (HORNET_E2E=1) so
// the normal test suite stays hermetic and fast; CI runs them as a
// dedicated pipeline step (make e2e-distributed).
package e2e

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

// TestDistributedFleetE2E is the full distributed drill against real
// processes: build hornet-serve and hornet-worker, boot a coordinator
// and two workers, SIGKILL the worker that is executing a job mid-run,
// and require that the job migrates to the survivor via its uploaded
// checkpoints (resumed_runs > 0) and that the final document is
// byte-identical to an uninterrupted in-process execution of the same
// request.
func TestDistributedFleetE2E(t *testing.T) {
	if os.Getenv("HORNET_E2E") == "" {
		t.Skip("set HORNET_E2E=1 to run the process-level distributed drill")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"hornet/cmd/hornet-serve", "hornet/cmd/hornet-worker")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	// A freshly freed port: racy in principle, fine for a dedicated CI
	// step.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}

	start("hornet-serve",
		"-addr", addr, "-jobs", "1", "-budget", "1",
		"-checkpoint-every", "500", "-worker-ttl", "2s")
	waitHealthy(t, base)

	workers := map[string]*exec.Cmd{
		"e2e-w1": start("hornet-worker", "-coordinator", base, "-id", "e2e-w1", "-capacity", "1"),
		"e2e-w2": start("hornet-worker", "-coordinator", base, "-id", "e2e-w2", "-capacity", "1"),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws, err := c.Workers(ctx)
		if err == nil && len(ws) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("two workers never registered (last: %v, %v)", ws, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = 60_000
	req := service.SubmitRequest{Name: "e2e-migrate", Config: &cfg, Seed: 17}

	info, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait for checkpointed progress, then SIGKILL whichever worker
	// process holds the task.
	deadline = time.Now().Add(2 * time.Minute)
	for {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatalf("job poll: %v", err)
		}
		if ji.Terminal() {
			t.Fatalf("job finished before the kill; state %+v (grow analyzed_cycles)", ji)
		}
		if ji.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint observed; job %+v", ji)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ws, err := c.Workers(ctx)
	if err != nil {
		t.Fatalf("workers: %v", err)
	}
	victim := ""
	for _, w := range ws {
		if len(w.Tasks) > 0 {
			victim = w.ID
		}
	}
	if victim == "" {
		t.Fatal("no worker holds the task despite checkpoint progress")
	}
	t.Logf("SIGKILLing %s mid-job", victim)
	if err := workers[victim].Process.Kill(); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	workers[victim].Wait()

	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("migrated job state = %s (%s)", final.State, final.Error)
	}
	if final.ResumedRuns < 1 {
		t.Errorf("resumed_runs = %d, want >= 1 (the survivor should have resumed from the uploaded checkpoint)",
			final.ResumedRuns)
	}
	_, migrated, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Fleet.TasksRequeued < 1 || st.Fleet.WorkersLost < 1 {
		t.Errorf("fleet stats show no migration: %+v", st.Fleet)
	}

	// The golden contract across process boundaries: an uninterrupted
	// in-process execution of the same request must produce the exact
	// bytes the twice-executed, once-killed fleet run served.
	ref, err := service.Execute(ctx, req, service.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatalf("reference execute: %v", err)
	}
	if !bytes.Equal(migrated, ref.Doc) {
		t.Errorf("migrated document differs from uninterrupted in-process run:\nmigrated: %s\nref:      %s",
			migrated, ref.Doc)
	}
	fmt.Printf("e2e: migrated after killing %s; resumed_runs=%d, requeued=%d, doc bytes identical\n",
		victim, final.ResumedRuns, st.Fleet.TasksRequeued)
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy at %s (last err: %v)", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Package e2e holds process-level end-to-end drills that build the real
// binaries and kill real processes. They are opt-in (HORNET_E2E=1) so
// the normal test suite stays hermetic and fast; CI runs them as a
// dedicated pipeline step (make e2e-distributed).
package e2e

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

// TestDistributedFleetE2E is the full distributed drill against real
// processes: build hornet-serve and hornet-worker, boot a coordinator
// and two workers, SIGKILL the worker that is executing a job mid-run,
// and require that the job migrates to the survivor via its uploaded
// checkpoints (resumed_runs > 0) and that the final document is
// byte-identical to an uninterrupted in-process execution of the same
// request.
func TestDistributedFleetE2E(t *testing.T) {
	if os.Getenv("HORNET_E2E") == "" {
		t.Skip("set HORNET_E2E=1 to run the process-level distributed drill")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"hornet/cmd/hornet-serve", "hornet/cmd/hornet-worker")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	addr := freePort(t)
	base := "http://" + addr

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}

	start("hornet-serve",
		"-addr", addr, "-jobs", "1", "-budget", "1",
		"-checkpoint-every", "500", "-worker-ttl", "2s")
	waitHealthy(t, base)

	// Each worker exposes its own /metrics so the drill can scrape the
	// survivor after the migration.
	workerMetrics := map[string]string{
		"e2e-w1": "http://" + freePort(t),
		"e2e-w2": "http://" + freePort(t),
	}
	workers := map[string]*exec.Cmd{}
	for _, id := range []string{"e2e-w1", "e2e-w2"} {
		workers[id] = start("hornet-worker", "-coordinator", base, "-id", id, "-capacity", "1",
			"-metrics-addr", workerMetrics[id][len("http://"):])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws, err := c.Workers(ctx)
		if err == nil && len(ws) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("two workers never registered (last: %v, %v)", ws, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = 60_000
	req := service.SubmitRequest{Name: "e2e-migrate", Config: &cfg, Seed: 17}

	info, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait for checkpointed progress, then SIGKILL whichever worker
	// process holds the task.
	deadline = time.Now().Add(2 * time.Minute)
	for {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatalf("job poll: %v", err)
		}
		if ji.Terminal() {
			t.Fatalf("job finished before the kill; state %+v (grow analyzed_cycles)", ji)
		}
		if ji.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint observed; job %+v", ji)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Mid-run flight-recorder check: with the job executing on the fleet,
	// the coordinator's exposition must already carry the key series. A
	// missing series here means the registry wiring regressed — fail the
	// pipeline rather than ship a blind daemon.
	mid := scrape(t, base+"/metrics")
	for _, s := range []string{
		`hornet_jobs{state="running"}`,
		`hornet_budget_capacity`,
		`hornet_fleet_lease_expiries_total`,
		`hornet_fleet_workers_live`,
	} {
		if _, ok := mid[s]; !ok {
			t.Errorf("mid-run coordinator /metrics missing %s", s)
		}
	}
	if mid[`hornet_jobs{state="running"}`] < 1 {
		t.Errorf("hornet_jobs{state=\"running\"} = %v mid-run, want >= 1", mid[`hornet_jobs{state="running"}`])
	}
	if !hasSeriesPrefix(mid, "hornet_engine_barrier_wait_seconds_bucket") {
		t.Error("mid-run coordinator /metrics missing the barrier-wait histogram")
	}

	ws, err := c.Workers(ctx)
	if err != nil {
		t.Fatalf("workers: %v", err)
	}
	victim := ""
	for _, w := range ws {
		if len(w.Tasks) > 0 {
			victim = w.ID
		}
	}
	if victim == "" {
		t.Fatal("no worker holds the task despite checkpoint progress")
	}
	t.Logf("SIGKILLing %s mid-job", victim)
	if err := workers[victim].Process.Kill(); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	workers[victim].Wait()

	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("migrated job state = %s (%s)", final.State, final.Error)
	}
	if final.ResumedRuns < 1 {
		t.Errorf("resumed_runs = %d, want >= 1 (the survivor should have resumed from the uploaded checkpoint)",
			final.ResumedRuns)
	}
	_, migrated, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Fleet.TasksRequeued < 1 || st.Fleet.WorkersLost < 1 {
		t.Errorf("fleet stats show no migration: %+v", st.Fleet)
	}

	// Post-migration flight-recorder check: the kill must be visible in
	// the coordinator's exposition.
	post := scrape(t, base+"/metrics")
	if post[`hornet_fleet_lease_expiries_total`] < 1 {
		t.Errorf("hornet_fleet_lease_expiries_total = %v after the kill, want >= 1",
			post[`hornet_fleet_lease_expiries_total`])
	}
	if post[`hornet_fleet_tasks_requeued_total`] < 1 {
		t.Errorf("hornet_fleet_tasks_requeued_total = %v after the kill, want >= 1",
			post[`hornet_fleet_tasks_requeued_total`])
	}
	if post[`hornet_engine_cycles_total`] == 0 {
		t.Error("coordinator recorded no engine cycles from the fleet's probe snapshots")
	}

	// The survivor's own /metrics: it resumed the migrated task, so it
	// must have executed cycles and uploaded checkpoints of its own.
	survivor := "e2e-w1"
	if victim == survivor {
		survivor = "e2e-w2"
	}
	wm := scrape(t, workerMetrics[survivor]+"/metrics")
	if wm[`hornet_worker_checkpoint_uploads_total`] < 1 {
		t.Errorf("survivor %s uploaded no checkpoints: %v", survivor, wm[`hornet_worker_checkpoint_uploads_total`])
	}
	if wm[`hornet_engine_cycles_total`] == 0 {
		t.Errorf("survivor %s recorded no engine cycles", survivor)
	}
	if !hasSeriesPrefix(wm, "hornet_engine_barrier_wait_seconds_bucket") {
		t.Errorf("survivor %s /metrics missing the barrier-wait histogram", survivor)
	}

	// The migrated job's trace timeline must record the migration as a
	// span; archive the raw document so a human can load the timeline of
	// every CI drill into Perfetto.
	traceDoc, traceRaw, err := c.Trace(ctx, info.ID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	migrateSeen := false
	for _, ev := range traceDoc.TraceEvents {
		if ev.Name == "migrate" {
			migrateSeen = true
		}
	}
	if !migrateSeen {
		t.Errorf("trace timeline has no migrate span; events: %d", len(traceDoc.TraceEvents))
	}
	artifacts := os.Getenv("HORNET_E2E_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}
	tracePath := filepath.Join(artifacts, "migrated-job-trace.json")
	if err := os.WriteFile(tracePath, traceRaw, 0o644); err != nil {
		t.Fatalf("writing trace artifact: %v", err)
	}
	t.Logf("trace timeline archived at %s (%d events)", tracePath, len(traceDoc.TraceEvents))

	// The golden contract across process boundaries: an uninterrupted
	// in-process execution of the same request must produce the exact
	// bytes the twice-executed, once-killed fleet run served.
	ref, err := service.Execute(ctx, req, service.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatalf("reference execute: %v", err)
	}
	if !bytes.Equal(migrated, ref.Doc) {
		t.Errorf("migrated document differs from uninterrupted in-process run:\nmigrated: %s\nref:      %s",
			migrated, ref.Doc)
	}
	fmt.Printf("e2e: migrated after killing %s; resumed_runs=%d, requeued=%d, doc bytes identical\n",
		victim, final.ResumedRuns, st.Fleet.TasksRequeued)
}

// freePort returns a freshly freed 127.0.0.1 address: racy in
// principle, fine for a dedicated CI step.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// scrape fetches a Prometheus text exposition and parses it into
// series → value. The endpoint may take a moment to come up on a
// freshly started worker, so connection errors retry briefly.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	var resp *http.Response
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	series := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line from %s: %q", url, line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

func hasSeriesPrefix(series map[string]float64, prefix string) bool {
	for k := range series {
		if strings.HasPrefix(k, prefix) {
			return true
		}
	}
	return false
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy at %s (last err: %v)", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

package e2e

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

// TestCoordinatorRestartE2E is the durable-coordinator drill against
// real processes: boot a journaled coordinator and a small worker
// fleet, SIGKILL the coordinator mid-run, restart it against the same
// -journal-dir, and require that the in-flight job reattaches and
// completes — resumed_runs > 0, document byte-identical to an
// uninterrupted in-process run. The drill runs twice: a plain fleet
// job (whose still-running worker must be re-adopted in place) and a
// 2-way sharded one (whose members restart from the journaled
// group-stable checkpoint set).
func TestCoordinatorRestartE2E(t *testing.T) {
	if os.Getenv("HORNET_E2E") == "" {
		t.Skip("set HORNET_E2E=1 to run the process-level coordinator-restart drill")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"hornet/cmd/hornet-serve", "hornet/cmd/hornet-worker")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	jdir, ckptDir := t.TempDir(), t.TempDir()
	addr := freePort(t)
	base := "http://" + addr
	coordArgs := []string{
		"-addr", addr, "-jobs", "2", "-budget", "2",
		"-checkpoint-every", "500", "-worker-ttl", "2s",
		"-journal-dir", jdir, "-checkpoint-dir", ckptDir,
	}

	// On failure, archive the journal the restarted coordinator replayed:
	// it is the drill's flight recorder.
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		artifacts := os.Getenv("HORNET_E2E_ARTIFACTS")
		if artifacts == "" {
			return
		}
		if err := os.MkdirAll(artifacts, 0o755); err != nil {
			return
		}
		if b, err := os.ReadFile(filepath.Join(jdir, "journal.wal")); err == nil {
			dst := filepath.Join(artifacts, "coordinator-journal.wal")
			if os.WriteFile(dst, b, 0o644) == nil {
				t.Logf("journal archived at %s (%d bytes)", dst, len(b))
			}
		}
	})

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}

	coord := start("hornet-serve", coordArgs...)
	waitHealthy(t, base)

	// Three single-slot workers: the plain drill needs one executor, the
	// sharded drill two co-scheduled members, and a spare absorbs timing.
	for i := 1; i <= 3; i++ {
		start("hornet-worker", "-coordinator", base,
			"-id", fmt.Sprintf("e2e-r%d", i), "-capacity", "1")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	c := client.New(base)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws, err := c.Workers(ctx)
		if err == nil && len(ws) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("three workers never registered (last: %v, %v)", ws, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = 60_000

	drills := []service.SubmitRequest{
		{Name: "e2e-restart-plain", Config: &cfg, Seed: 23},
		{Name: "e2e-restart-sharded", Config: &cfg, Seed: 29, Shards: 2},
	}
	for _, req := range drills {
		coord = runCoordinatorRestartDrill(t, ctx, c, req, coord,
			func() *exec.Cmd { return start("hornet-serve", coordArgs...) }, base)
	}
}

// runCoordinatorRestartDrill submits one request, SIGKILLs the
// coordinator once checkpointed progress exists, restarts it against
// the same journal, and requires the job to reattach, resume and finish
// byte-identically. Returns the new coordinator process.
func runCoordinatorRestartDrill(t *testing.T, ctx context.Context, c *client.Client,
	req service.SubmitRequest, coord *exec.Cmd, restart func() *exec.Cmd, base string) *exec.Cmd {
	t.Helper()

	info, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("%s: submit: %v", req.Name, err)
	}

	// Wait for durable progress before the kill. Two checkpoints: by the
	// root member's second upload a sharded group's first stable set has
	// been promoted (and journaled); plain jobs just get a deeper resume.
	deadline := time.Now().Add(3 * time.Minute)
	for {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatalf("%s: job poll: %v", req.Name, err)
		}
		if ji.Terminal() {
			t.Fatalf("%s: job finished before the kill; state %+v (grow the workload)", req.Name, ji)
		}
		if ji.Checkpoints >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: no checkpointed progress; job %+v", req.Name, ji)
		}
		time.Sleep(20 * time.Millisecond)
	}

	t.Logf("%s: SIGKILLing the coordinator mid-run", req.Name)
	if err := coord.Process.Kill(); err != nil {
		t.Fatalf("%s: kill coordinator: %v", req.Name, err)
	}
	coord.Wait()

	coord = restart()
	waitHealthy(t, base)

	// The restarted daemon must have replayed the journal and rebuilt the
	// job under its original ID.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("%s: stats after restart: %v", req.Name, err)
	}
	if !st.Journal.Enabled || st.JobsRestored < 1 {
		t.Fatalf("%s: restarted coordinator replayed nothing: journal %+v, restored %d",
			req.Name, st.Journal, st.JobsRestored)
	}

	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("%s: wait: %v", req.Name, err)
	}
	if final.State != service.StateDone {
		t.Fatalf("%s: restored job state = %s (%s)", req.Name, final.State, final.Error)
	}
	if final.ResumedRuns < 1 {
		t.Errorf("%s: resumed_runs = %d, want >= 1 (the job should have reattached or resumed from checkpoints)",
			req.Name, final.ResumedRuns)
	}
	_, served, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("%s: result: %v", req.Name, err)
	}

	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatalf("%s: stats: %v", req.Name, err)
	}
	if req.Shards < 2 && st.Fleet.TasksAdopted < 1 {
		t.Errorf("%s: the pre-restart executor was never re-adopted: %+v", req.Name, st.Fleet)
	}

	// The golden contract: killed coordinator, replayed journal, resumed
	// fleet work — and the served bytes still match an uninterrupted
	// in-process execution of the same request.
	unsharded := req
	unsharded.Shards = 0
	ref, err := service.Execute(ctx, unsharded, service.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatalf("%s: reference execute: %v", req.Name, err)
	}
	if !bytes.Equal(served, ref.Doc) {
		t.Errorf("%s: restarted-coordinator document differs from uninterrupted run:\nserved: %s\nref:    %s",
			req.Name, served, ref.Doc)
	}
	fmt.Printf("e2e: %s survived a coordinator SIGKILL+restart; resumed_runs=%d, adopted=%d, doc bytes identical\n",
		req.Name, final.ResumedRuns, st.Fleet.TasksAdopted)
	return coord
}

// Package hornet is a Go reproduction of HORNET (Lis et al., "Scalable,
// accurate multicore simulation in the 1000-core era", ISPASS 2011): a
// parallel, highly configurable, cycle-level multicore simulator built
// around an ingress-queued wormhole virtual-channel router NoC.
//
// The package re-exports the library's public surface; the implementation
// lives under internal/. A minimal network-only simulation:
//
//	cfg := hornet.DefaultConfig()
//	cfg.Traffic = []hornet.TrafficConfig{{
//		Pattern:       hornet.PatternUniform,
//		InjectionRate: 0.02,
//	}}
//	sys, err := hornet.NewSystem(cfg)
//	if err != nil { ... }
//	if err := sys.AttachSyntheticTraffic(); err != nil { ... }
//	sys.RunWarmup()
//	sys.Run(200_000)
//	fmt.Println(sys.Summary().Report())
//
// Frontends beyond synthetic traffic: trace replay (AttachTrace), the
// built-in MIPS core with MPI-style network syscalls (AttachMIPS, see the
// mips assembler via AssembleMIPS), shared memory with MSI or NUCA
// (AttachMemory + AttachMIPSShared), and the Pin-style native frontend
// (AttachPinApp). Power and thermal models are always on: sys.Power holds
// per-tile per-epoch samples and NewThermalGrid consumes them.
package hornet

import (
	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/power"
	"hornet/internal/sim"
	"hornet/internal/splash"
	"hornet/internal/stats"
	"hornet/internal/thermal"
	"hornet/internal/topology"
	"hornet/internal/trace"
)

// Core types, re-exported.
type (
	// Config is the root simulation configuration (see DefaultConfig).
	Config = config.Config
	// TrafficConfig describes one synthetic traffic source.
	TrafficConfig = config.TrafficConfig
	// MemoryConfig describes the cache/coherence/memory-controller setup.
	MemoryConfig = config.MemoryConfig
	// System is a fully wired simulation.
	System = core.System
	// Summary is the aggregated statistics view.
	Summary = stats.Summary
	// RunResult reports one run's cycle and wall-clock accounting.
	RunResult = sim.RunResult
	// NodeID identifies a tile.
	NodeID = noc.NodeID
	// FlowID identifies a traffic flow.
	FlowID = noc.FlowID
	// Packet is the bridge-level transfer unit.
	Packet = noc.Packet
	// Trace is an injection-event trace.
	Trace = trace.Trace
	// PowerModel accumulates per-tile per-epoch power samples.
	PowerModel = power.Model
	// ThermalGrid is the HOTSPOT-style RC thermal solver.
	ThermalGrid = thermal.Grid
	// MIPSImage is an assembled MIPS program.
	MIPSImage = mips.Image
	// MIPSCore is the built-in processor model.
	MIPSCore = mips.Core
	// Topology is the interconnect geometry.
	Topology = topology.Topology
	// SplashBenchmark names a SPLASH-2-like trace profile.
	SplashBenchmark = splash.Benchmark
	// SplashParams parameterizes trace synthesis.
	SplashParams = splash.Params
	// IdealResult is the congestion-oblivious model output (Fig 8).
	IdealResult = core.IdealResult
)

// Topology kind names.
const (
	TopoLine      = config.TopoLine
	TopoRing      = config.TopoRing
	TopoMesh      = config.TopoMesh
	TopoTorus     = config.TopoTorus
	TopoMeshX1    = config.TopoMeshX1
	TopoMeshX1Y1  = config.TopoMeshX1Y1
	TopoMeshXCube = config.TopoMeshXCube
)

// Routing algorithm names.
const (
	RouteXY       = config.RouteXY
	RouteYX       = config.RouteYX
	RouteO1Turn   = config.RouteO1Turn
	RouteROMM     = config.RouteROMM
	RouteValiant  = config.RouteValiant
	RoutePROM     = config.RoutePROM
	RouteStatic   = config.RouteStatic
	RouteAdaptive = config.RouteAdaptive
)

// VC allocation policy names.
const (
	VCADynamic   = config.VCADynamic
	VCAStaticSet = config.VCAStaticSet
	VCAEDVCA     = config.VCAEDVCA
	VCAFAA       = config.VCAFAA
)

// Synthetic traffic pattern names.
const (
	PatternUniform       = config.PatternUniform
	PatternTranspose     = config.PatternTranspose
	PatternBitComplement = config.PatternBitComplement
	PatternShuffle       = config.PatternShuffle
	PatternTornado       = config.PatternTornado
	PatternNeighbor      = config.PatternNeighbor
	PatternHotspot       = config.PatternHotspot
	PatternH264          = config.PatternH264
)

// SPLASH-2-like benchmark profiles.
const (
	SplashFFT       = splash.FFT
	SplashRadix     = splash.Radix
	SplashWater     = splash.Water
	SplashSwaptions = splash.Swaptions
	SplashOcean     = splash.Ocean
)

// DefaultConfig returns the paper's baseline configuration (Table I):
// 8x8 mesh, XY routing, dynamic VCA, 4 VCs x 4 flits, 8-flit packets,
// cycle-accurate synchronization.
func DefaultConfig() Config { return config.Default() }

// Default1024Config returns the 32x32-mesh (1024-core) configuration.
func Default1024Config() Config { return config.Default1024() }

// DefaultMemoryConfig returns a baseline MSI memory hierarchy.
func DefaultMemoryConfig() *MemoryConfig { return config.DefaultMemory() }

// NewSystem builds a simulation from a configuration.
func NewSystem(cfg Config) (*System, error) { return core.New(cfg) }

// NewTopology builds just the geometry (trace generation, analysis).
func NewTopology(cfg config.TopologyConfig) (*Topology, error) { return topology.New(cfg) }

// AssembleMIPS assembles MIPS source into a loadable image.
func AssembleMIPS(src string) (*MIPSImage, error) { return mips.Assemble(src) }

// GenerateSplashTrace synthesizes a SPLASH-2-like network trace.
func GenerateSplashTrace(b SplashBenchmark, p SplashParams) (*Trace, error) {
	return splash.Generate(b, p)
}

// GenerateSplashMemoryTrace synthesizes the memory-controller-directed
// variant (Fig 11); controllers are node IDs.
func GenerateSplashMemoryTrace(b SplashBenchmark, p SplashParams, controllers []NodeID) (*Trace, error) {
	return splash.GenerateMemory(b, p, controllers)
}

// IdealTrace replays a trace under the congestion-oblivious model (Fig 8).
func IdealTrace(topo *Topology, tr *Trace) IdealResult { return core.IdealTrace(topo, tr) }

// NewThermalGrid builds the RC thermal solver for a W x H die.
func NewThermalGrid(w, h int, cfg config.ThermalConfig) (*ThermalGrid, error) {
	return thermal.NewGrid(w, h, cfg)
}

// Accuracy returns the paper's Fig 6b metric: 100% minus the percentage
// deviation of measured from the cycle-accurate reference.
func Accuracy(measured, reference float64) float64 { return stats.Accuracy(measured, reference) }

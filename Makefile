GO ?= go

.PHONY: build test test-race test-race-rest test-full test-snapshot bench bench-json serve vet

build:
	$(GO) build ./...

# Fast CI gate: shrunk experiment shapes, < 2 minutes on a small host.
test:
	$(GO) test -short ./...

# Race-clean gate over the same short suite. The generous timeout is for
# single-core hosts, where race instrumentation is ~10x.
test-race:
	$(GO) test -short -race -timeout 30m ./...

# The paper-shape suite (tier-1 verify): full CI-scale windows.
test-full:
	$(GO) test ./...

# The snapshot-determinism test set: the golden round-trip harness
# (every frontend × 2 worker counts × snapshot cycles in short mode; 3
# worker counts without -short), the section-corruption tests, the
# MIPS/mem warmup-cache reuse proof, the killed-daemon resume drill, and
# the container fuzz seed corpora.
SNAPSHOT_TESTS := TestSnapshotRoundTrip|TestSnapshotSectionCorruption|TestSnapshotMIPSRunsToCompletion|TestWarmupCacheMIPSSharedMem|TestMipsCheckpointResumeAfterRestart|Fuzz

# Snapshot-determinism gate, isolated so a checkpoint/restore regression
# is visible apart from the general suite — all under the race detector.
test-snapshot:
	$(GO) test -short -race -timeout 20m -count=1 \
		-run '$(SNAPSHOT_TESTS)' \
		./internal/core ./internal/snapshot ./internal/service

# The race gate minus the snapshot set: CI runs test-snapshot first and
# this second, so the heaviest tests are not raced twice per run while
# local `make test-race` stays a single complete gate.
test-race-rest:
	$(GO) test -short -race -timeout 30m -skip '$(SNAPSHOT_TESTS)' ./...

# One iteration of every benchmark in the repo: the root-package figure
# benchmarks plus the per-package micro-benchmarks (sweep overhead,
# engine, ...). HORNET_FULL=1 switches to paper-scale parameters.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Perf-trajectory data point: sweep items/sec with and without
# warmup-snapshot reuse (warmup-once/fork-many), written to
# BENCH_PR3.json. BENCH_SCALE=-tiny shrinks it for smoke runs.
bench-json:
	$(GO) run ./cmd/hornet-bench $(BENCH_SCALE) -out BENCH_PR3.json

# Run the simulation-as-a-service daemon (see README: hornet-serve).
# Override flags via SERVE_FLAGS, e.g. make serve SERVE_FLAGS='-addr :9090'.
serve:
	$(GO) run ./cmd/hornet-serve $(SERVE_FLAGS)

vet:
	$(GO) vet ./...

GO ?= go

.PHONY: build test test-race test-race-rest test-full test-snapshot bench bench-json bench-gate \
	bench-sharded-json bench-sharded-gate bench-telemetry-json bench-telemetry-gate \
	e2e-distributed e2e-sharded e2e-coordinator-restart fuzz-smoke fmt-check serve worker vet vulncheck \
	validate-examples scenario-golden

build:
	$(GO) build ./...

# Fast CI gate: shrunk experiment shapes, < 2 minutes on a small host.
test:
	$(GO) test -short ./...

# Race-clean gate over the same short suite. The generous timeout is for
# single-core hosts, where race instrumentation is ~10x.
test-race:
	$(GO) test -short -race -timeout 30m ./...

# The paper-shape suite (tier-1 verify): full CI-scale windows.
test-full:
	$(GO) test ./...

# The snapshot-determinism test set: the golden round-trip harness
# (every frontend × 2 worker counts × snapshot cycles in short mode; 3
# worker counts without -short), the section-corruption tests, the
# MIPS/mem warmup-cache reuse proof, the killed-daemon resume drill, and
# the container fuzz seed corpora.
SNAPSHOT_TESTS := TestSnapshotRoundTrip|TestSnapshotSectionCorruption|TestSnapshotMIPSRunsToCompletion|TestWarmupCacheMIPSSharedMem|TestMipsCheckpointResumeAfterRestart|Fuzz

# Snapshot-determinism gate, isolated so a checkpoint/restore regression
# is visible apart from the general suite — all under the race detector.
test-snapshot:
	$(GO) test -short -race -timeout 20m -count=1 \
		-run '$(SNAPSHOT_TESTS)' \
		./internal/core ./internal/snapshot ./internal/service

# The race gate minus the snapshot set: CI runs test-snapshot first and
# this second, so the heaviest tests are not raced twice per run while
# local `make test-race` stays a single complete gate.
test-race-rest:
	$(GO) test -short -race -timeout 30m -skip '$(SNAPSHOT_TESTS)' ./...

# One iteration of every benchmark in the repo: the root-package figure
# benchmarks plus the per-package micro-benchmarks (sweep overhead,
# engine, ...). HORNET_FULL=1 switches to paper-scale parameters.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Perf-trajectory data point: the same job set executed on the local
# backend and on a 2-worker fleet (distributed vs local throughput +
# cross-backend byte-identity), written to BENCH_PR5.json.
# BENCH_SCALE=-tiny shrinks it for smoke runs; the PR 3 warmup-reuse
# bench is still available via `hornet-bench -warmup`.
bench-json:
	$(GO) run ./cmd/hornet-bench $(BENCH_SCALE) -out BENCH_PR5.json

# Bench regression gate (blocking in CI): the fleet's documents must be
# byte-identical to the local backend's, the fleet must actually have
# executed the jobs, and fleet throughput must stay above the committed
# floor. The floor is deliberately conservative — it catches "the fleet
# serialized/restarted everything" regressions, not host noise.
BENCH_FLOOR ?= 0.35
bench-gate:
	$(GO) run ./cmd/hornet-bench -gate BENCH_PR5.json -floor $(BENCH_FLOOR)

# Sharded-simulation data point (PR 6): ONE simulation single-engine vs
# space-parallel across 2 workers, written to BENCH_PR6.json. Members
# barrier through the coordinator every cycle, so the speedup is a
# liveness canary, not a wall-time win; byte-identity is the contract.
bench-sharded-json:
	$(GO) run ./cmd/hornet-bench -sharded $(BENCH_SCALE) -out BENCH_PR6.json

# Sharded bench gate (blocking in CI): byte-identity across sharded vs
# single execution, the job must actually have shipped to the fleet,
# and throughput must stay above a floor set low enough to pass HTTP
# barrier overhead but catch a deadlocked/serialized shard group.
SHARD_FLOOR ?= 0.01
bench-sharded-gate:
	$(GO) run ./cmd/hornet-bench -gate BENCH_PR6.json -floor $(SHARD_FLOOR)

# Telemetry-overhead data point (PR 8): the same job with the NoC
# telemetry pipeline detached and attached (fast cadence + live SSE
# subscriber), written to BENCH_PR8.json. Byte-identity across the two
# passes is the contract; the wall-time ratio is the observability tax.
bench-telemetry-json:
	$(GO) run ./cmd/hornet-bench -telemetry $(BENCH_SCALE) -out BENCH_PR8.json

# Telemetry bench gate: attached wall time must stay within ~5% of
# detached (floor 0.95). Non-blocking in CI — timing-sensitive on noisy
# shared runners — but a hard local check for perf work on the sampler.
TELEMETRY_FLOOR ?= 0.95
bench-telemetry-gate:
	$(GO) run ./cmd/hornet-bench -gate BENCH_PR8.json -floor $(TELEMETRY_FLOOR)

# Process-level distributed drill: build the real binaries, boot a
# coordinator plus 2 workers, SIGKILL the one executing the job, and
# require checkpoint migration (resumed_runs > 0) plus a byte-identical
# document. Opt-in via HORNET_E2E so the hermetic suite stays fast.
e2e-distributed:
	HORNET_E2E=1 $(GO) test -count=1 -timeout 15m -v -run TestDistributedFleetE2E ./e2e

# Process-level sharded drill: one simulation space-parallel across 2
# worker processes (a third idle as the spare), SIGKILL a member's
# worker mid-run, and require group rollback + checkpoint-seeded
# re-dispatch plus a document byte-identical to the single-engine run.
e2e-sharded:
	HORNET_E2E=1 $(GO) test -count=1 -timeout 15m -v -run TestShardedFleetE2E ./e2e

# Process-level durable-coordinator drill: journaled coordinator + 3
# workers, SIGKILL the COORDINATOR mid-run, restart it against the same
# -journal-dir, and require the in-flight job to reattach and complete
# (resumed_runs > 0, byte-identical document) — for a plain fleet job
# and a 2-way sharded one. On failure the replayed journal lands in
# HORNET_E2E_ARTIFACTS.
e2e-coordinator-restart:
	HORNET_E2E=1 $(GO) test -count=1 -timeout 15m -v -run TestCoordinatorRestartE2E ./e2e

# Fuzz smoke over the snapshot container's seed corpora plus the
# scenario schema's decode→normalize→encode pipeline (one target per
# invocation — `go test -fuzz` accepts a single target).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeBytes$$' -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzReaderPayload$$' -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzVerify$$' -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzScenario$$' -fuzztime $(FUZZTIME) ./internal/scenario

# Scenario-schema golden gate: the examples/scenarios gallery matches
# the preset registry byte for byte and every normalized form is a
# stable fixed point. Regenerate the gallery after editing presets with:
#   go test ./internal/scenario -run TestExamplesMatchPresets -update
scenario-golden:
	$(GO) test -count=1 -run 'TestExamples|TestNormalizeIdempotent|TestPresetsAllCompile' ./internal/scenario

# Dry-run every example scenario through the real validation path
# (hornet-exp -validate = the daemon's POST /api/v1/validate): the
# gallery must always be submittable as-is.
validate-examples:
	@set -e; for f in examples/scenarios/*.json; do \
		echo "validate $$f"; \
		$(GO) run ./cmd/hornet-exp -scenario $$f -validate >/dev/null; \
	done

# Formatting gate: fails listing any file gofmt would rewrite.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the simulation-as-a-service daemon (see README: hornet-serve).
# Override flags via SERVE_FLAGS, e.g. make serve SERVE_FLAGS='-addr :9090'.
serve:
	$(GO) run ./cmd/hornet-serve $(SERVE_FLAGS)

# Join a running coordinator as a worker (distributed mode). Override
# via WORKER_FLAGS, e.g. make worker WORKER_FLAGS='-capacity 4'.
worker:
	$(GO) run ./cmd/hornet-worker $(WORKER_FLAGS)

vet:
	$(GO) vet ./...

# Known-vulnerability scan over the module graph and the reachable call
# graph. Network-dependent (downloads the vuln DB), so CI runs it in its
# own step; locally it needs internet access.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

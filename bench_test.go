// Benchmarks regenerating every table and figure in the paper's
// evaluation (one bench per experiment; see DESIGN.md's experiment index
// and EXPERIMENTS.md for paper-vs-measured numbers), plus engine
// micro-benchmarks. Run a single figure with e.g.
//
//	go test -bench=BenchFig8 -benchtime=1x
//
// The figure benches default to CI-scale workloads; set HORNET_FULL=1 for
// paper-scale parameters.
package hornet_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/experiments"
	"hornet/internal/sweep"
)

func opts() experiments.Options {
	return experiments.Options{Full: experiments.FullFromEnv()}
}

func BenchmarkTableI(b *testing.B) {
	benchRows(b, func() int { return len(experiments.TableI(opts())) })
}
func BenchmarkSec4aScaling(b *testing.B) {
	benchRows(b, func() int { return experiments.Sec4a(opts()).TotalFlows })
}
func BenchmarkFig6aSpeedup(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig6a(opts())) })
}
func BenchmarkFig6bSyncPeriod(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig6b(opts())) })
}
func BenchmarkFig7FastForward(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig7(opts())) })
}
func BenchmarkFig8Congestion(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig8(opts())) })
}
func BenchmarkFig9VCConfig(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig9(opts())) })
}
func BenchmarkFig10RoutingVCA(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig10(opts())) })
}
func BenchmarkFig11MemCtrl(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig11(opts())) })
}
func BenchmarkFig12TraceVsIntegrated(b *testing.B) {
	benchRows(b, func() int { return int(experiments.Fig12(opts()).PacketsSent) })
}
func BenchmarkFig13ThermalTransient(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig13(opts())) })
}
func BenchmarkFig14ThermalMap(b *testing.B) {
	benchRows(b, func() int { return len(experiments.Fig14(opts())) })
}

func benchRows(b *testing.B, run func() int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if run() == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkSweepParallelism measures wall-clock scaling of the experiment
// sweep engine on the Fig 9 configuration sweep (12 independent SPLASH
// replays at Tiny scale): the headline number behind `hornet-exp
// -parallel N`. On a single-core host the two sub-benchmarks should tie.
func BenchmarkSweepParallelism(b *testing.B) {
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			o := opts()
			o.Tiny = !o.Full
			o.Parallel = par
			for i := 0; i < b.N; i++ {
				if len(experiments.Fig9(o)) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkSweepOverhead isolates the engine's own cost: scheduling,
// seed derivation, budget accounting and result ordering for no-op runs.
func BenchmarkSweepOverhead(b *testing.B) {
	items := make([]sweep.Item, 256)
	for i := range items {
		items[i] = sweep.Item{
			Key: fmt.Sprintf("noop/%03d", i),
			Run: func(ctx sweep.Ctx) (any, error) { return ctx.Seed, nil },
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep.Run(context.Background(), items, sweep.Config{Workers: 8, Seed: 1})
	}
}

// BenchmarkRouterCycle measures raw simulation throughput: tile-cycles
// per second on an 8x8 mesh under moderate uniform load, the core number
// behind every figure's wall-clock cost.
func BenchmarkRouterCycle(b *testing.B) {
	cfg := config.Default()
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}}
	cfg.Engine.Workers = 1
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		b.Fatal(err)
	}
	sys.Run(1000) // warm the tables
	b.ReportAllocs()
	b.ResetTimer()
	sys.Run(uint64(b.N))
	b.StopTimer()
	b.ReportMetric(float64(64), "tiles/cycle")
}

// BenchmarkCycleAccurateVsLoose quantifies the barrier cost difference
// between the two synchronization modes at 4 workers.
func BenchmarkCycleAccurateVsLoose(b *testing.B) {
	for _, period := range []int{1, 5, 100} {
		b.Run(map[int]string{1: "cycle-accurate", 5: "sync-5", 100: "sync-100"}[period], func(b *testing.B) {
			cfg := config.Default()
			cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.05}}
			cfg.Engine.Workers = 4
			cfg.Engine.SyncPeriod = period
			sys, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.AttachSyntheticTraffic(); err != nil {
				b.Fatal(err)
			}
			sys.Run(1000)
			b.ResetTimer()
			sys.Run(uint64(b.N))
		})
	}
}

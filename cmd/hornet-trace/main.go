// Command hornet-trace synthesizes SPLASH-2-like network traces (the
// paper's Graphite-captured trace substitute) in HORNET's text format.
//
// Usage:
//
//	hornet-trace -bench radix -nodes 64 -cycles 2000000 > radix.trace
//	hornet-trace -bench water -intensity 8 -mem 0,7,56,63 > water-mc.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hornet/internal/noc"
	"hornet/internal/splash"
	"hornet/internal/trace"
)

func main() {
	bench := flag.String("bench", "radix", "benchmark profile: fft radix water swaptions ocean")
	nodes := flag.Int("nodes", 64, "node count (width*height)")
	width := flag.Int("width", 0, "mesh width (default sqrt(nodes))")
	cycles := flag.Uint64("cycles", 400_000, "trace length in network cycles")
	seed := flag.Uint64("seed", 0x5EED0A11, "random seed")
	intensity := flag.Float64("intensity", 1.0, "load multiplier")
	flits := flag.Int("flits", 8, "packet size in flits")
	mem := flag.String("mem", "", "comma-separated controller nodes: emit MC-request trace")
	flag.Parse()

	w := *width
	if w == 0 {
		for w = 1; w*w < *nodes; w++ {
		}
	}
	if *nodes%w != 0 {
		fatal(fmt.Errorf("nodes %d not divisible by width %d", *nodes, w))
	}
	p := splash.Params{
		Nodes:       *nodes,
		Width:       w,
		Height:      *nodes / w,
		Cycles:      *cycles,
		Seed:        *seed,
		Intensity:   *intensity,
		PacketFlits: *flits,
	}
	b := splash.Benchmark(strings.ToLower(*bench))
	var tr *trace.Trace
	var err error
	if *mem != "" {
		var mcs []noc.NodeID
		for _, s := range strings.Split(*mem, ",") {
			n, convErr := strconv.Atoi(strings.TrimSpace(s))
			if convErr != nil {
				fatal(convErr)
			}
			mcs = append(mcs, noc.NodeID(n))
		}
		tr, err = splash.GenerateMemory(b, p, mcs)
	} else {
		tr, err = splash.Generate(b, p)
	}
	if err != nil {
		fatal(err)
	}
	if err := tr.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hornet-trace:", err)
	os.Exit(1)
}

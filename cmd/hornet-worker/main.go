// Command hornet-worker is a fleet member for hornet-serve's
// distributed mode: it registers with a coordinator daemon, long-polls
// for job assignments, executes them with the exact validation and
// execution path the daemon uses locally, streams progress back, and
// uploads periodic checkpoint snapshots so a job survives this process
// dying — the coordinator migrates it, checkpoint included, to another
// worker.
//
// Workers are diskless and stateless: point any number of them at a
// coordinator and kill them freely.
//
// Usage:
//
//	hornet-worker                                  # join localhost:8080
//	hornet-worker -coordinator http://host:8080    # join a remote daemon
//	hornet-worker -capacity 4                      # offer 4 CPU slots
//	hornet-worker -id worker-blue                  # stable identity
//	hornet-worker -metrics-addr :9091              # GET /metrics + /healthz
//	hornet-worker -debug-addr :6061                # net/http/pprof
//
// SIGINT/SIGTERM drains gracefully: the worker deregisters and its
// in-flight tasks requeue (with their uploaded checkpoints) onto the
// surviving fleet. kill -9 is also safe — the coordinator notices the
// missed heartbeats and migrates the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service/worker"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8080",
		"hornet-serve base URL to register with")
	id := flag.String("id", "", "stable worker identity (\"\" = coordinator-assigned)")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0),
		"CPU slots offered to the fleet")
	telemetryEvery := flag.Duration("telemetry-every", 500*time.Millisecond,
		"NoC telemetry push period for executing tasks (negative = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	metricsAddr := flag.String("metrics-addr", "",
		"serve GET /metrics and /healthz on this address (\"\" = disabled)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (\"\" = disabled)")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hornet-worker: %v\n", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Warn("metrics listener failed", obs.Err(err))
			}
		}()
	}
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Warn("debug listener failed", obs.Err(err))
			}
		}()
	}

	w := worker.New(worker.Options{
		Coordinator:    *coordinator,
		ID:             *id,
		Capacity:       *capacity,
		TelemetryEvery: *telemetryEvery,
		Logger:         logger,
		Metrics:        reg,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = w.Run(ctx)
	if ctx.Err() != nil {
		// Graceful drain: deregister so assigned tasks migrate now
		// instead of after the lease TTL.
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := w.Deregister(dctx); err != nil {
			logger.Warn("deregister failed", obs.Err(err))
		}
		logger.Info("drained", slog.String("worker", w.ID()))
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hornet-worker: %v\n", err)
		os.Exit(1)
	}
}

// Command hornet-worker is a fleet member for hornet-serve's
// distributed mode: it registers with a coordinator daemon, long-polls
// for job assignments, executes them with the exact validation and
// execution path the daemon uses locally, streams progress back, and
// uploads periodic checkpoint snapshots so a job survives this process
// dying — the coordinator migrates it, checkpoint included, to another
// worker.
//
// Workers are diskless and stateless: point any number of them at a
// coordinator and kill them freely.
//
// Usage:
//
//	hornet-worker                                  # join localhost:8080
//	hornet-worker -coordinator http://host:8080    # join a remote daemon
//	hornet-worker -capacity 4                      # offer 4 CPU slots
//	hornet-worker -id worker-blue                  # stable identity
//
// SIGINT/SIGTERM drains gracefully: the worker deregisters and its
// in-flight tasks requeue (with their uploaded checkpoints) onto the
// surviving fleet. kill -9 is also safe — the coordinator notices the
// missed heartbeats and migrates the same way.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hornet/internal/service/worker"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8080",
		"hornet-serve base URL to register with")
	id := flag.String("id", "", "stable worker identity (\"\" = coordinator-assigned)")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0),
		"CPU slots offered to the fleet")
	flag.Parse()

	w := worker.New(worker.Options{
		Coordinator: *coordinator,
		ID:          *id,
		Capacity:    *capacity,
		Logf:        log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := w.Run(ctx)
	if ctx.Err() != nil {
		// Graceful drain: deregister so assigned tasks migrate now
		// instead of after the lease TTL.
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := w.Deregister(dctx); err != nil {
			log.Printf("hornet-worker: deregister: %v", err)
		}
		log.Printf("hornet-worker: %s drained", w.ID())
		return
	}
	if err != nil {
		log.Fatalf("hornet-worker: %v", err)
	}
}

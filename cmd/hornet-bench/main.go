// Command hornet-bench measures the warmup-once/fork-many win: it runs
// the `conv` sweep (one warmup prefix, many measured windows) twice —
// once re-simulating every item's warmup, once restoring all but the
// first from the shared warmup snapshot — verifies the two documents
// are byte-identical (the snapshot round-trip contract), and emits a
// JSON record of items/sec for the perf trajectory (make bench-json).
//
// Usage:
//
//	hornet-bench                      # default scale, writes BENCH_PR3.json
//	hornet-bench -tiny -out -         # CI smoke scale, JSON on stdout only
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hornet/internal/experiments"
	"hornet/internal/sweep"
)

// report is the emitted benchmark record.
type report struct {
	Bench           string  `json:"bench"`
	Scale           string  `json:"scale"`
	Items           int     `json:"items"`
	WarmupSimulated uint64  `json:"warmups_simulated"` // with reuse: 1
	WarmupRestored  uint64  `json:"warmups_restored"`
	WallColdMS      float64 `json:"wall_cold_ms"`  // every item simulates its warmup
	WallReuseMS     float64 `json:"wall_reuse_ms"` // warmup-once/fork-many
	ItemsPerSecCold float64 `json:"items_per_sec_cold"`
	ItemsPerSecWarm float64 `json:"items_per_sec_reuse"`
	Speedup         float64 `json:"speedup"`
	DocsIdentical   bool    `json:"docs_identical"`
}

func main() {
	tiny := flag("tiny")
	full := flag("full")
	out := "BENCH_PR3.json"
	for i, a := range os.Args[1:] {
		if a == "-out" && i+2 < len(os.Args) {
			out = os.Args[i+2]
		}
	}

	f, ok := experiments.FigureByName("conv")
	if !ok {
		fmt.Fprintln(os.Stderr, "hornet-bench: conv figure missing")
		os.Exit(1)
	}
	scale := "default"
	if tiny {
		scale = "tiny"
	}
	if full {
		scale = "full"
	}
	base := experiments.Options{Tiny: tiny, Full: full, Seed: 0x5EED0A11}

	docBytes := func(o experiments.Options) ([]byte, int, time.Duration) {
		began := time.Now()
		_, doc, err := f.Document(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hornet-bench: %v\n", err)
			os.Exit(1)
		}
		var buf bytes.Buffer
		if err := doc.WriteJSON(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "hornet-bench: %v\n", err)
			os.Exit(1)
		}
		return buf.Bytes(), len(doc.Runs), time.Since(began)
	}

	cold := base
	cold.NoWarmupReuse = true
	coldDoc, items, coldWall := docBytes(cold)

	warm := base
	warm.Warmups = sweep.NewSnapshotCache("")
	warmDoc, _, warmWall := docBytes(warm)

	r := report{
		Bench:           "warmup-snapshot-reuse",
		Scale:           scale,
		Items:           items,
		WarmupSimulated: warm.Warmups.Misses(),
		WarmupRestored:  warm.Warmups.Hits(),
		WallColdMS:      float64(coldWall.Microseconds()) / 1000,
		WallReuseMS:     float64(warmWall.Microseconds()) / 1000,
		ItemsPerSecCold: float64(items) / coldWall.Seconds(),
		ItemsPerSecWarm: float64(items) / warmWall.Seconds(),
		Speedup:         float64(coldWall) / float64(warmWall),
		DocsIdentical:   bytes.Equal(coldDoc, warmDoc),
	}
	b, _ := json.MarshalIndent(r, "", "  ")
	b = append(b, '\n')
	os.Stdout.Write(b)
	if out != "-" {
		if err := os.WriteFile(out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hornet-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if !r.DocsIdentical {
		fmt.Fprintln(os.Stderr, "hornet-bench: documents differ between cold and reuse runs")
		os.Exit(1)
	}
}

// flag reports whether a bare boolean flag is present (the command's
// argument surface is too small for the flag package's ceremony).
func flag(name string) bool {
	for _, a := range os.Args[1:] {
		if a == "-"+name || a == "--"+name {
			return true
		}
	}
	return false
}

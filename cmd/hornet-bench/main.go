// Command hornet-bench emits the repo's perf-trajectory data points as
// JSON, and gates CI on the determinism contract behind them.
//
// Modes:
//
//	hornet-bench                      # distributed-fleet bench → BENCH_PR5.json
//	hornet-bench -tiny                # CI smoke scale
//	hornet-bench -warmup              # PR 3 warmup-reuse bench → BENCH_PR3.json
//	hornet-bench -sharded             # PR 6 sharded-vs-single bench → BENCH_PR6.json
//	hornet-bench -gate BENCH_PR5.json -floor 0.35
//	                                  # regression gate: exit 1 unless
//	                                  # docs_identical && speedup >= floor
//
// The distributed bench boots a real coordinator (over HTTP) twice: once
// bare (every job executes on the in-process local backend) and once
// with two attached hornet-workers (every job ships to the fleet). The
// same jobs run both ways; the report records wall-clock throughput for
// each and whether the result documents are byte-identical across
// backends — the golden contract that makes the fleet safe to use.
// Determinism is blocking in CI (the gate), throughput is trajectory
// data.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"hornet/internal/config"
	"hornet/internal/experiments"
	"hornet/internal/service"
	"hornet/internal/service/client"
	"hornet/internal/service/worker"
	"hornet/internal/sweep"
)

// report is the emitted benchmark record. The warmup bench (PR 3) and
// the distributed bench (PR 5) share the envelope; unused fields stay
// zero.
type report struct {
	Bench string `json:"bench"`
	Scale string `json:"scale"`

	// Distributed-fleet bench (BENCH_PR5.json).
	Jobs            int     `json:"jobs,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	WallLocalMS     float64 `json:"wall_local_ms,omitempty"`
	WallFleetMS     float64 `json:"wall_fleet_ms,omitempty"`
	JobsPerSecLocal float64 `json:"jobs_per_sec_local,omitempty"`
	JobsPerSecFleet float64 `json:"jobs_per_sec_fleet,omitempty"`
	RemoteJobs      uint64  `json:"remote_jobs,omitempty"`

	// Sharded-simulation bench (BENCH_PR6.json): ONE simulation run
	// single-engine and space-parallel across fleet workers. The wall
	// times reuse the local/fleet fields; Shards records the span count.
	Shards int `json:"shards,omitempty"`

	// Telemetry-overhead bench (BENCH_PR8.json): ONE job run with the
	// NoC telemetry sampler detached and again with it attached and a
	// live SSE subscriber draining the stream. Speedup is detached wall
	// over attached wall, so the committed floor bounds the observability
	// tax; byte-identity across the two passes is the blocking contract.
	TelemetryFrames int     `json:"telemetry_frames,omitempty"`
	WallDetachedMS  float64 `json:"wall_detached_ms,omitempty"`
	WallTelemetryMS float64 `json:"wall_telemetry_ms,omitempty"`

	// Warmup-reuse bench (BENCH_PR3.json).
	Items           int     `json:"items,omitempty"`
	WarmupSimulated uint64  `json:"warmups_simulated,omitempty"`
	WarmupRestored  uint64  `json:"warmups_restored,omitempty"`
	WallColdMS      float64 `json:"wall_cold_ms,omitempty"`
	WallReuseMS     float64 `json:"wall_reuse_ms,omitempty"`
	ItemsPerSecCold float64 `json:"items_per_sec_cold,omitempty"`
	ItemsPerSecWarm float64 `json:"items_per_sec_reuse,omitempty"`

	// Shared: Speedup is fleet-vs-local (distributed) or reuse-vs-cold
	// (warmup); DocsIdentical is the byte-identity verdict.
	Speedup       float64 `json:"speedup"`
	DocsIdentical bool    `json:"docs_identical"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hornet-bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	tiny := flag.Bool("tiny", false, "smoke-test scale")
	full := flag.Bool("full", false, "paper scale")
	warmup := flag.Bool("warmup", false, "run the PR 3 warmup-reuse bench instead of the distributed bench")
	sharded := flag.Bool("sharded", false, "run the PR 6 sharded-vs-single bench instead of the distributed bench")
	telemetry := flag.Bool("telemetry", false, "run the PR 8 telemetry-overhead bench instead of the distributed bench")
	out := flag.String("out", "", `output path ("-" = stdout only; default BENCH_PR5.json, BENCH_PR3.json with -warmup, BENCH_PR6.json with -sharded, or BENCH_PR8.json with -telemetry)`)
	gate := flag.String("gate", "", "gate mode: check this report file instead of benchmarking")
	floor := flag.Float64("floor", 0.35, "minimum acceptable speedup in gate mode")
	flag.Parse()

	if *gate != "" {
		runGate(*gate, *floor)
		return
	}
	scale := "default"
	if *tiny {
		scale = "tiny"
	}
	if *full {
		scale = "full"
	}
	var r report
	switch {
	case *warmup:
		if *out == "" {
			*out = "BENCH_PR3.json"
		}
		r = warmupBench(*tiny, *full, scale)
	case *sharded:
		if *out == "" {
			*out = "BENCH_PR6.json"
		}
		r = shardedBench(scale)
	case *telemetry:
		if *out == "" {
			*out = "BENCH_PR8.json"
		}
		r = telemetryBench(scale)
	default:
		if *out == "" {
			*out = "BENCH_PR5.json"
		}
		r = distributedBench(scale)
	}

	b, _ := json.MarshalIndent(r, "", "  ")
	b = append(b, '\n')
	os.Stdout.Write(b)
	if *out != "-" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if !r.DocsIdentical {
		fatalf("documents are not byte-identical across execution paths")
	}
}

// runGate enforces the committed regression floor on an existing report:
// determinism is always blocking; throughput blocks only below floor
// (set low enough that noisy CI hosts pass and real regressions do not).
func runGate(path string, floor float64) {
	b, err := os.ReadFile(path)
	if err != nil {
		fatalf("gate: %v", err)
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		fatalf("gate: parsing %s: %v", path, err)
	}
	if !r.DocsIdentical {
		fatalf("gate: %s: docs_identical=false — the cross-backend byte-identity contract is broken", path)
	}
	if (r.Bench == "distributed-fleet" || r.Bench == "sharded-simulation") && r.RemoteJobs == 0 {
		fatalf("gate: %s: remote_jobs=0 — the fleet never executed anything, the comparison is vacuous", path)
	}
	if r.Speedup < floor {
		fatalf("gate: %s: speedup %.3f below floor %.3f", path, r.Speedup, floor)
	}
	fmt.Printf("hornet-bench: gate ok (%s: speedup %.3f >= %.3f, docs identical)\n", r.Bench, r.Speedup, floor)
}

// benchJobs builds the distributed bench's job set: independent config
// scenarios (distinct injection rates, so no coalescing or cache
// interference) sized by scale.
func benchJobs(scale string) []service.SubmitRequest {
	jobs, analyzed := 4, 20_000
	switch scale {
	case "tiny":
		jobs, analyzed = 3, 2_000
	case "full":
		jobs, analyzed = 8, 60_000
	}
	reqs := make([]service.SubmitRequest, jobs)
	for i := range reqs {
		cfg := config.Default()
		cfg.Topology.Width, cfg.Topology.Height = 4, 4
		cfg.Traffic = []config.TrafficConfig{{
			Pattern:       config.PatternTranspose,
			InjectionRate: 0.04 + 0.01*float64(i),
		}}
		cfg.WarmupCycles = 400
		cfg.AnalyzedCycles = analyzed
		reqs[i] = service.SubmitRequest{
			Name:   fmt.Sprintf("bench-%02d", i),
			Config: &cfg,
			Seed:   0x5EED0A11,
		}
	}
	return reqs
}

// runAll submits every job at once and waits for all documents,
// returning them keyed by job name plus the total wall time.
func runAll(c *client.Client, reqs []service.SubmitRequest) (map[string][]byte, time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	docs := make(map[string][]byte, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	began := time.Now()
	for _, req := range reqs {
		wg.Add(1)
		go func(req service.SubmitRequest) {
			defer wg.Done()
			info, err := c.SubmitAndWait(ctx, req)
			if err != nil {
				fatalf("submit %s: %v", req.Name, err)
			}
			if info.State != service.StateDone {
				fatalf("job %s: state %s (%s)", req.Name, info.State, info.Error)
			}
			_, raw, err := c.Result(ctx, info.ID)
			if err != nil {
				fatalf("result %s: %v", req.Name, err)
			}
			mu.Lock()
			docs[req.Name] = raw
			mu.Unlock()
		}(req)
	}
	wg.Wait()
	return docs, time.Since(began)
}

func distributedBench(scale string) report {
	reqs := benchJobs(scale)
	maxJobs := len(reqs)
	budget := runtime.GOMAXPROCS(0)

	// Pass 1: bare coordinator — every job executes on the local backend.
	localSrv := service.New(service.Options{MaxJobs: maxJobs, Budget: budget})
	localHTTP := httptest.NewServer(localSrv)
	localDocs, localWall := runAll(client.New(localHTTP.URL), reqs)
	localHTTP.Close()
	localSrv.Close()

	// Pass 2: the same coordinator shape with two attached workers —
	// every job ships over HTTP to the fleet.
	fleetSrv := service.New(service.Options{MaxJobs: maxJobs, Budget: budget})
	fleetHTTP := httptest.NewServer(fleetSrv)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	const workers = 2
	capacity := (budget + 1) / workers
	for i := 0; i < workers; i++ {
		w := worker.New(worker.Options{
			Coordinator: fleetHTTP.URL,
			ID:          fmt.Sprintf("bench-w%d", i+1),
			Capacity:    capacity,
		})
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	cl := client.New(fleetHTTP.URL)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Stats(context.Background())
		if err == nil && st.Fleet.WorkersLive == workers {
			break
		}
		if time.Now().After(deadline) {
			fatalf("workers never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fleetDocs, fleetWall := runAll(cl, reqs)
	st, err := cl.Stats(context.Background())
	if err != nil {
		fatalf("stats: %v", err)
	}
	cancel()
	wg.Wait()
	fleetHTTP.Close()
	fleetSrv.Close()

	identical := len(localDocs) == len(fleetDocs)
	for name, doc := range localDocs {
		if !bytes.Equal(doc, fleetDocs[name]) {
			identical = false
		}
	}
	return report{
		Bench:           "distributed-fleet",
		Scale:           scale,
		Jobs:            len(reqs),
		Workers:         workers,
		WallLocalMS:     float64(localWall.Microseconds()) / 1000,
		WallFleetMS:     float64(fleetWall.Microseconds()) / 1000,
		JobsPerSecLocal: float64(len(reqs)) / localWall.Seconds(),
		JobsPerSecFleet: float64(len(reqs)) / fleetWall.Seconds(),
		RemoteJobs:      st.RemoteJobs,
		Speedup:         float64(localWall) / float64(fleetWall),
		DocsIdentical:   identical,
	}
}

// shardedBench is the PR 6 data point: ONE simulation executed
// single-engine on the local backend, then space-parallel (shards=2)
// across two attached workers over HTTP. Members synchronize every
// cycle (sync_period 1) through the coordinator, so wall-clock is
// dominated by barrier round-trips — the speedup here is trajectory
// data and a liveness canary (a deadlocked or serialized group shows up
// as a collapse), while the byte-identity verdict is the blocking
// contract: sharding must be invisible in the document.
func shardedBench(scale string) report {
	analyzed := 20_000
	switch scale {
	case "tiny":
		analyzed = 2_000
	case "full":
		analyzed = 120_000
	}
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = analyzed
	req := service.SubmitRequest{Name: "bench-sharded", Config: &cfg, Seed: 0x5EED0A11}

	budget := runtime.GOMAXPROCS(0)

	// Pass 1: single-engine on the bare coordinator's local backend.
	singleSrv := service.New(service.Options{MaxJobs: 1, Budget: budget})
	singleHTTP := httptest.NewServer(singleSrv)
	singleDocs, singleWall := runAll(client.New(singleHTTP.URL), []service.SubmitRequest{req})
	singleHTTP.Close()
	singleSrv.Close()

	// Pass 2: the same simulation sharded 2-way across two workers.
	fleetSrv := service.New(service.Options{MaxJobs: 1, Budget: budget})
	fleetHTTP := httptest.NewServer(fleetSrv)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	const shards = 2
	capacity := (budget + 1) / shards
	if capacity < 1 {
		capacity = 1
	}
	for i := 0; i < shards; i++ {
		w := worker.New(worker.Options{
			Coordinator: fleetHTTP.URL,
			ID:          fmt.Sprintf("shard-w%d", i+1),
			Capacity:    capacity,
		})
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	cl := client.New(fleetHTTP.URL)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Stats(context.Background())
		if err == nil && st.Fleet.WorkersLive == shards {
			break
		}
		if time.Now().After(deadline) {
			fatalf("workers never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sreq := req
	sreq.Shards = shards
	shardDocs, shardWall := runAll(cl, []service.SubmitRequest{sreq})
	st, err := cl.Stats(context.Background())
	if err != nil {
		fatalf("stats: %v", err)
	}
	cancel()
	wg.Wait()
	fleetHTTP.Close()
	fleetSrv.Close()

	return report{
		Bench:           "sharded-simulation",
		Scale:           scale,
		Jobs:            1,
		Workers:         shards,
		Shards:          shards,
		WallLocalMS:     float64(singleWall.Microseconds()) / 1000,
		WallFleetMS:     float64(shardWall.Microseconds()) / 1000,
		JobsPerSecLocal: 1 / singleWall.Seconds(),
		JobsPerSecFleet: 1 / shardWall.Seconds(),
		RemoteJobs:      st.RemoteJobs,
		Speedup:         float64(singleWall) / float64(shardWall),
		DocsIdentical:   bytes.Equal(singleDocs[req.Name], shardDocs[req.Name]),
	}
}

// telemetryBench is the PR 8 data point: the observability tax of the
// NoC telemetry path. ONE job runs on a bare coordinator with telemetry
// disabled, then on a fresh coordinator (no cache carry-over) with a
// fast sampling cadence and a live SSE subscriber draining the merged
// stream — sampler, collector, pump, merge, counter tracks and the HTTP
// fan-out all engaged. The floor gate bounds the slowdown; the blocking
// contract is that telemetry never changes a result byte.
func telemetryBench(scale string) report {
	analyzed := 20_000
	switch scale {
	case "tiny":
		analyzed = 4_000
	case "full":
		analyzed = 120_000
	}
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 8, 8
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = analyzed
	req := service.SubmitRequest{Name: "bench-telemetry", Config: &cfg, Seed: 0x5EED0A11}

	budget := runtime.GOMAXPROCS(0)

	// Pass 1: telemetry detached (negative period = off), the zero-cost
	// baseline.
	offSrv := service.New(service.Options{MaxJobs: 1, Budget: budget, TelemetryEvery: -1})
	offHTTP := httptest.NewServer(offSrv)
	offDocs, offWall := runAll(client.New(offHTTP.URL), []service.SubmitRequest{req})
	offHTTP.Close()
	offSrv.Close()

	// Pass 2: telemetry attached at an aggressive cadence, with a
	// subscriber counting frames so the whole pipeline is exercised.
	onSrv := service.New(service.Options{MaxJobs: 1, Budget: budget, TelemetryEvery: 25 * time.Millisecond})
	onHTTP := httptest.NewServer(onSrv)
	cl := client.New(onHTTP.URL)
	ctx, cancel := context.WithCancel(context.Background())
	frames := 0
	subDone := make(chan struct{})
	began := time.Now()
	info, err := cl.Submit(ctx, req)
	if err != nil {
		fatalf("submit: %v", err)
	}
	go func() {
		defer close(subDone)
		cl.Telemetry(ctx, info.ID, func(ev service.Event) bool {
			if ev.Type == "telemetry" {
				frames++
			}
			return true
		})
	}()
	final, err := cl.Wait(ctx, info.ID)
	if err != nil || final.State != service.StateDone {
		fatalf("telemetry pass: %v (state %s, %s)", err, final.State, final.Error)
	}
	onWall := time.Since(began)
	_, onDoc, err := cl.Result(ctx, info.ID)
	if err != nil {
		fatalf("result: %v", err)
	}
	<-subDone
	cancel()
	onHTTP.Close()
	onSrv.Close()

	if frames == 0 {
		fatalf("telemetry pass produced no telemetry frames — the bench measured nothing")
	}
	return report{
		Bench:           "telemetry-overhead",
		Scale:           scale,
		Jobs:            1,
		TelemetryFrames: frames,
		WallDetachedMS:  float64(offWall.Microseconds()) / 1000,
		WallTelemetryMS: float64(onWall.Microseconds()) / 1000,
		Speedup:         float64(offWall) / float64(onWall),
		DocsIdentical:   bytes.Equal(offDocs[req.Name], onDoc),
	}
}

// warmupBench is the PR 3 data point: the `conv` sweep with and without
// warmup-once/fork-many snapshot reuse.
func warmupBench(tiny, full bool, scale string) report {
	f, ok := experiments.FigureByName("conv")
	if !ok {
		fatalf("conv figure missing")
	}
	base := experiments.Options{Tiny: tiny, Full: full, Seed: 0x5EED0A11}

	docBytes := func(o experiments.Options) ([]byte, int, time.Duration) {
		began := time.Now()
		_, doc, err := f.Document(o)
		if err != nil {
			fatalf("%v", err)
		}
		var buf bytes.Buffer
		if err := doc.WriteJSON(&buf); err != nil {
			fatalf("%v", err)
		}
		return buf.Bytes(), len(doc.Runs), time.Since(began)
	}

	cold := base
	cold.NoWarmupReuse = true
	coldDoc, items, coldWall := docBytes(cold)

	warm := base
	warm.Warmups = sweep.NewSnapshotCache("")
	warmDoc, _, warmWall := docBytes(warm)

	return report{
		Bench:           "warmup-snapshot-reuse",
		Scale:           scale,
		Items:           items,
		WarmupSimulated: warm.Warmups.Misses(),
		WarmupRestored:  warm.Warmups.Hits(),
		WallColdMS:      float64(coldWall.Microseconds()) / 1000,
		WallReuseMS:     float64(warmWall.Microseconds()) / 1000,
		ItemsPerSecCold: float64(items) / coldWall.Seconds(),
		ItemsPerSecWarm: float64(items) / warmWall.Seconds(),
		Speedup:         float64(coldWall) / float64(warmWall),
		DocsIdentical:   bytes.Equal(coldDoc, warmDoc),
	}
}

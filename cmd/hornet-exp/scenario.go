package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	scen "hornet/internal/scenario"
	"hornet/internal/service"
	"hornet/internal/sweep"
)

// runScenario executes (or, with validate, dry-runs) one declarative
// scenario document locally: the same validation, normalization and
// execution path hornet-serve applies to {"scenario": ...} submissions,
// so the document printed here is byte-identical to what the daemon
// would cache and serve. Returns the process exit code.
func runScenario(arg string, validate bool, seed uint64, parallel int, ckptDir string, quiet bool) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "hornet-exp: "+format+"\n", args...)
		return 1
	}
	if seed != 0 {
		fmt.Fprintln(os.Stderr, "hornet-exp: scenario documents carry their own run.seed; omit -seed")
		return 2
	}
	raw, code := loadScenario(arg)
	if raw == nil {
		return code
	}
	req := service.SubmitRequest{Scenario: raw, Workers: parallel}

	if validate {
		resp, apiErr := service.DryRun(req)
		if apiErr != nil {
			return fail("invalid scenario: %v", apiErr)
		}
		b, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		os.Stdout.Write(append(b, '\n'))
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := service.ExecOptions{Workers: parallel}
	if ckptDir != "" {
		opts.Warmups = sweep.NewSnapshotCache(ckptDir)
	}
	if !quiet {
		opts.OnProgress = func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, key)
		}
	}
	res, err := service.Execute(ctx, req, opts)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hornet-exp: interrupted")
		return 130
	}
	if err != nil {
		return fail("%v", err)
	}
	os.Stdout.Write(res.Doc)
	if res.RunErrs > 0 {
		return fail("%d run(s) recorded errors in the document", res.RunErrs)
	}
	return 0
}

// loadScenario resolves -scenario's argument: a file path, preset:NAME,
// or preset:list. Returns nil with the exit code when nothing to run.
func loadScenario(arg string) ([]byte, int) {
	if name, ok := strings.CutPrefix(arg, "preset:"); ok {
		if name == "list" {
			for _, n := range scen.PresetNames() {
				fmt.Println(n)
			}
			return nil, 0
		}
		s, ok := scen.Preset(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "hornet-exp: unknown preset %q (preset:list to enumerate)\n", name)
			return nil, 2
		}
		b, err := scen.Encode(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hornet-exp: %v\n", err)
			return nil, 1
		}
		return b, 0
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hornet-exp: %v\n", err)
		return nil, 1
	}
	return b, 0
}

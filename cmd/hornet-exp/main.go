// Command hornet-exp regenerates the paper's tables and figures: it runs
// the experiment harnesses in internal/experiments and prints the series
// each figure plots.
//
// Usage:
//
//	hornet-exp -fig 8            # one figure (6a, 6b, 7, 8, 9, 10, 11, 12, 13, 14, 4a, t1)
//	hornet-exp -all              # everything
//	hornet-exp -fig 6a -full     # paper-scale parameters (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hornet/internal/experiments"
	"hornet/internal/thermal"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 6a 6b 7 8 9 10 11 12 13 14 4a t1")
	all := flag.Bool("all", false, "run every experiment")
	full := flag.Bool("full", false, "paper-scale parameters (much slower)")
	seed := flag.Uint64("seed", 0, "random seed (0 = default)")
	flag.Parse()

	o := experiments.Options{Full: *full, Seed: *seed}
	figs := []string{}
	if *all {
		figs = []string{"t1", "4a", "6a", "6b", "7", "8", "9", "10", "11", "12", "13", "14"}
	} else if *fig != "" {
		figs = []string{strings.ToLower(*fig)}
	} else {
		flag.Usage()
		os.Exit(2)
	}
	for _, f := range figs {
		if err := run(f, o); err != nil {
			fmt.Fprintf(os.Stderr, "hornet-exp: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(fig string, o experiments.Options) error {
	switch fig {
	case "t1":
		fmt.Println("== Table I: configuration matrix smoke ==")
		for _, row := range experiments.TableI(o) {
			fmt.Println("  ", row)
		}
	case "4a":
		fmt.Println("== §IV-A: worst-link flow count and starvation ==")
		r := experiments.Sec4a(o)
		fmt.Printf("  8x8  max flows/link = %5d (n^3/4 = %5d)\n", r.MaxFlows8, r.Law8)
		fmt.Printf("  32x32 max flows/link = %5d (n^3/4 = %5d)\n", r.MaxFlows32, r.Law32)
		fmt.Printf("  starved flows under heavy load: %d of %d\n", r.StarvedFlows, r.TotalFlows)
	case "6a":
		fmt.Println("== Fig 6a: parallel speedup vs workers ==")
		fmt.Println("  workload      sync            workers  wall          speedup")
		for _, r := range experiments.Fig6a(o) {
			fmt.Printf("  %-12s %-15s %6d  %-12v %6.2fx\n", r.Workload, r.SyncMode, r.Workers, r.Wall, r.Speedup)
		}
	case "6b":
		fmt.Println("== Fig 6b: speedup & accuracy vs sync period (transpose, 4 workers) ==")
		fmt.Println("  period  speedup  accuracy  avg-latency")
		for _, r := range experiments.Fig6b(o) {
			fmt.Printf("  %6d  %6.2fx  %7.2f%%  %10.2f\n", r.Period, r.Speedup, r.AccuracyPct, r.AvgLatency)
		}
	case "7":
		fmt.Println("== Fig 7: fast-forwarding benefit ==")
		fmt.Println("  workload  ff     workers  wall          skipped     speedup")
		for _, r := range experiments.Fig7(o) {
			fmt.Printf("  %-8s  %-5v  %6d  %-12v %10d  %6.2fx\n", r.Workload, r.FF, r.Workers, r.Wall, r.Skipped, r.Speedup)
		}
	case "8":
		fmt.Println("== Fig 8: congestion effect on flit latency ==")
		fmt.Println("  benchmark   with-congestion  without  ratio")
		for _, r := range experiments.Fig8(o) {
			fmt.Printf("  %-10s  %15.2f  %7.2f  %5.2fx\n", r.Benchmark, r.WithCongestion, r.WithoutCongestion, r.Ratio)
		}
	case "9":
		fmt.Println("== Fig 9: VC configuration vs in-network latency ==")
		fmt.Println("  benchmark   config   vca      latency")
		for _, r := range experiments.Fig9(o) {
			fmt.Printf("  %-10s  %dVCx%d   %-7s  %7.2f\n", r.Benchmark, r.VCs, r.BufFlits, r.VCA, r.Latency)
		}
	case "10":
		fmt.Println("== Fig 10: routing x VCA on WATER ==")
		fmt.Println("  vcs  routing  vca      latency")
		for _, r := range experiments.Fig10(o) {
			fmt.Printf("  %3d  %-7s  %-7s  %7.2f\n", r.VCs, r.Routing, r.VCA, r.Latency)
		}
	case "11":
		fmt.Println("== Fig 11: memory controllers vs latency (RADIX) ==")
		fmt.Println("  MCs  routing  vca      latency")
		for _, r := range experiments.Fig11(o) {
			fmt.Printf("  %3d  %-7s  %-7s  %7.2f\n", r.Controllers, r.Routing, r.VCA, r.Latency)
		}
	case "12":
		fmt.Println("== Fig 12: trace-based vs integrated simulation (Cannon) ==")
		r := experiments.Fig12(o)
		fmt.Printf("  ideal-net app runtime:    %10d cycles\n", r.IdealCycles)
		fmt.Printf("  trace replay runtime:     %10d cycles\n", r.TraceReplayCycles)
		fmt.Printf("  integrated runtime:       %10d cycles\n", r.IntegratedCycles)
		fmt.Printf("  packets:                  %10d\n", r.PacketsSent)
		fmt.Printf("  normalized (trace/integrated): injection rate %.2fx, execution time %.2fx\n",
			r.NormInjectionRateTrace, r.NormExecTimeTrace)
	case "13":
		fmt.Println("== Fig 13: temperature over time ==")
		for _, s := range experiments.Fig13(o) {
			fmt.Printf("  %s (swing %.2fC):\n    cycle      maxC   meanC\n", s.Benchmark, s.SwingC)
			for i := range s.Cycle {
				if i%4 != 0 {
					continue
				}
				fmt.Printf("    %9d  %6.2f  %6.2f\n", s.Cycle[i], s.MaxTempC[i], s.MeanTempC[i])
			}
		}
	case "14":
		fmt.Println("== Fig 14: steady-state temperature maps (8x8, XY, corner MC) ==")
		for _, m := range experiments.Fig14(o) {
			fmt.Printf("  %s: hotspot (%d,%d) %.2fC, corner MC %.2fC\n",
				m.Benchmark, m.HotX, m.HotY, m.MaxTempC, m.CornerMCTempC)
			fmt.Println(indent(thermal.HeatmapString(m.TempsC, m.Width), "    "))
		}
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return pad + strings.Join(lines, "\n"+pad)
}

// Command hornet-exp regenerates the paper's tables and figures: it runs
// the experiment sweeps in internal/experiments and prints the series
// each figure plots (or emits them as JSON documents).
//
// Independent simulation configurations within a figure run concurrently
// on a bounded worker pool (-parallel); the timing figures (6a, 6b, 7)
// always execute their runs one at a time because wall-clock time is the
// measurement. For a fixed seed the JSON output of the non-timing figures
// is byte-identical at every -parallel setting.
//
// Usage:
//
//	hornet-exp -only 8                  # one figure (6a 6b 7 8 9 10 11 12 13 14 4a t1)
//	hornet-exp -only 8,9,t1             # several
//	hornet-exp -all                     # everything
//	hornet-exp -all -parallel 8         # sweep 8 configurations at once
//	hornet-exp -only 9 -json            # emit the sweep document as JSON
//	hornet-exp -all -json -out results  # cache documents under results/ (resume: cached figures are skipped)
//	hornet-exp -only 6a -full           # paper-scale parameters (slow)
//	hornet-exp -only conv -checkpoint-dir ckpt/
//	                                    # persist warmup snapshots: later
//	                                    # invocations skip shared warmups
//	hornet-exp snapshot ckpt/FILE.snap  # inspect a snapshot file
//
// Declarative scenarios (the same documents hornet-serve accepts as
// {"scenario": ...}; see internal/scenario) run locally too:
//
//	hornet-exp -scenario examples/scenarios/uniform-load-8x8.json
//	hornet-exp -scenario preset:reduction-tree-4x4
//	hornet-exp -scenario preset:list    # list the named presets
//	hornet-exp -scenario file.json -validate
//	                                    # dry-run: normalize, print the
//	                                    # content address, run nothing
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hornet/internal/experiments"
	"hornet/internal/snapshotcli"
	"hornet/internal/sweep"
	"hornet/internal/thermal"
)

func main() {
	// Subcommand form: `hornet-exp snapshot <file>` inspects a warmup or
	// checkpoint snapshot and exits.
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		os.Exit(snapshotcli.Inspect(os.Args[2:], os.Stdout, os.Stderr))
	}
	only := flag.String("only", "", "comma-separated figures to reproduce: 6a 6b 7 8 9 10 11 12 13 14 4a t1")
	figFlag := flag.String("fig", "", "alias for -only (kept for compatibility)")
	all := flag.Bool("all", false, "run every experiment")
	full := flag.Bool("full", false, "paper-scale parameters (much slower); HORNET_FULL=1 is equivalent")
	tiny := flag.Bool("tiny", false, "CI smoke scale (the shapes go test -short asserts)")
	seed := flag.Uint64("seed", 0, "sweep master seed (0 = default); per-run seeds derive from it")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent sweep runs for non-timing figures")
	budget := flag.Int("budget", 0, "CPU-slot budget shared by all concurrent runs (0 = max(parallel, GOMAXPROCS))")
	jsonOut := flag.Bool("json", false, "emit sweep documents as JSON on stdout instead of text")
	outDir := flag.String("out", "", "with -json: cache documents under this directory, skipping figures already cached for the same configuration")
	ckptDir := flag.String("checkpoint-dir", "", "persist warmup snapshots under this directory so repeated invocations skip shared warmups (\"\" = per-process memory cache)")
	noReuse := flag.Bool("no-warmup-reuse", false, "simulate every warmup instead of restoring shared snapshots (byte-identical output; for benchmarking the reuse win)")
	quiet := flag.Bool("q", false, "suppress per-run progress on stderr")
	scenarioArg := flag.String("scenario", "", "run a declarative scenario: a JSON file path or preset:NAME (preset:list to enumerate)")
	validate := flag.Bool("validate", false, "with -scenario: dry-run only — validate, normalize, print the content address")
	flag.Parse()

	if *scenarioArg != "" {
		os.Exit(runScenario(*scenarioArg, *validate, *seed, *parallel, *ckptDir, *quiet))
	}
	if *validate {
		fmt.Fprintln(os.Stderr, "hornet-exp: -validate requires -scenario")
		os.Exit(2)
	}

	sel := *only
	if sel == "" {
		sel = *figFlag
	}
	var figs []experiments.Figure
	switch {
	case *all:
		figs = experiments.Figures()
	case sel != "":
		var err error
		figs, err = experiments.ParseFigureList(sel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hornet-exp: %v\n", err)
			os.Exit(2)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the sweep context: workers drain, the partial
	// document is still flushed (JSON mode), and nothing dies mid-write.
	// The first signal unregisters the handler, so a second signal kills
	// the process with the default disposition instead of being swallowed
	// while in-flight runs drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	o := experiments.Options{
		Full:          *full || experiments.FullFromEnv(),
		Tiny:          *tiny,
		Seed:          *seed,
		Parallel:      *parallel,
		Budget:        *budget,
		Context:       ctx,
		NoWarmupReuse: *noReuse,
	}
	if *ckptDir != "" {
		// One disk-backed warmup cache shared by every figure this
		// invocation runs — and, via the directory, by future invocations.
		o.Warmups = sweep.NewSnapshotCache(*ckptDir)
	}
	if !*quiet {
		o.Progress = func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, key)
		}
	}

	for _, f := range figs {
		err := run(f, o, *jsonOut, *outDir)
		if errors.Is(err, context.Canceled) {
			if *jsonOut {
				fmt.Fprintf(os.Stderr, "hornet-exp: interrupted; partial results flushed\n")
			} else {
				fmt.Fprintf(os.Stderr, "hornet-exp: interrupted\n")
			}
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hornet-exp: %v\n", err)
			os.Exit(1)
		}
	}
}

// run executes one figure and renders it. In JSON mode the sweep document
// goes to stdout (and, with -out, into the cache directory keyed by the
// configuration hash — a figure whose document is already cached is not
// re-run). An interrupted figure still flushes its partial document to
// stdout, but is never cached: a hash hit must always mean a complete run.
func run(f experiments.Figure, o experiments.Options, jsonOut bool, outDir string) error {
	if jsonOut && outDir != "" {
		cache := sweep.Cache{Dir: outDir}
		hash := f.ConfigHash(o)
		if doc, ok, err := cache.Load(f.Name, hash); err != nil {
			return err
		} else if ok {
			fmt.Fprintf(os.Stderr, "%s: cached (%s)\n", f.Name, cache.Path(f.Name, hash))
			return doc.WriteJSON(os.Stdout)
		}
		_, doc, runErr := f.Document(o)
		if runErr != nil {
			if err := doc.WriteJSON(os.Stdout); err != nil {
				return err
			}
			return runErr
		}
		if err := cache.Store(doc); err != nil {
			return err
		}
		return doc.WriteJSON(os.Stdout)
	}
	if jsonOut {
		_, doc, runErr := f.Document(o)
		if err := doc.WriteJSON(os.Stdout); err != nil {
			return err
		}
		return runErr
	}
	began := time.Now()
	rows, _ := f.Run(o)
	if err := context.Cause(ctxOf(o)); err != nil {
		return err
	}
	fmt.Printf("== %s ==\n", f.Title)
	printRows(f.Name, rows)
	fmt.Fprintf(os.Stderr, "%s: %v\n", f.Name, time.Since(began).Round(time.Millisecond))
	return nil
}

// ctxOf returns the options context, Background when unset.
func ctxOf(o experiments.Options) context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func printRows(name string, rows any) {
	switch name {
	case "t1":
		for _, row := range rows.([]string) {
			fmt.Println("  ", row)
		}
	case "4a":
		r := rows.(experiments.Sec4aResult)
		fmt.Printf("  8x8  max flows/link = %5d (n^3/4 = %5d)\n", r.MaxFlows8, r.Law8)
		fmt.Printf("  32x32 max flows/link = %5d (n^3/4 = %5d)\n", r.MaxFlows32, r.Law32)
		fmt.Printf("  starved flows under heavy load: %d of %d\n", r.StarvedFlows, r.TotalFlows)
	case "6a":
		fmt.Println("  workload      sync            workers  wall          speedup")
		for _, r := range rows.([]experiments.Fig6aRow) {
			fmt.Printf("  %-12s %-15s %6d  %-12v %6.2fx\n", r.Workload, r.SyncMode, r.Workers, r.Wall, r.Speedup)
		}
	case "6b":
		fmt.Println("  period  speedup  accuracy  avg-latency")
		for _, r := range rows.([]experiments.Fig6bRow) {
			fmt.Printf("  %6d  %6.2fx  %7.2f%%  %10.2f\n", r.Period, r.Speedup, r.AccuracyPct, r.AvgLatency)
		}
	case "7":
		fmt.Println("  workload  ff     workers  wall          skipped     speedup")
		for _, r := range rows.([]experiments.Fig7Row) {
			fmt.Printf("  %-8s  %-5v  %6d  %-12v %10d  %6.2fx\n", r.Workload, r.FF, r.Workers, r.Wall, r.Skipped, r.Speedup)
		}
	case "8":
		fmt.Println("  benchmark   with-congestion  without  ratio")
		for _, r := range rows.([]experiments.Fig8Row) {
			fmt.Printf("  %-10s  %15.2f  %7.2f  %5.2fx\n", r.Benchmark, r.WithCongestion, r.WithoutCongestion, r.Ratio)
		}
	case "9":
		fmt.Println("  benchmark   config   vca      latency")
		for _, r := range rows.([]experiments.Fig9Row) {
			fmt.Printf("  %-10s  %dVCx%d   %-7s  %7.2f\n", r.Benchmark, r.VCs, r.BufFlits, r.VCA, r.Latency)
		}
	case "10":
		fmt.Println("  vcs  routing  vca      latency")
		for _, r := range rows.([]experiments.Fig10Row) {
			fmt.Printf("  %3d  %-7s  %-7s  %7.2f\n", r.VCs, r.Routing, r.VCA, r.Latency)
		}
	case "11":
		fmt.Println("  MCs  routing  vca      latency")
		for _, r := range rows.([]experiments.Fig11Row) {
			fmt.Printf("  %3d  %-7s  %-7s  %7.2f\n", r.Controllers, r.Routing, r.VCA, r.Latency)
		}
	case "12":
		r := rows.(experiments.Fig12Result)
		fmt.Printf("  ideal-net app runtime:    %10d cycles\n", r.IdealCycles)
		fmt.Printf("  trace replay runtime:     %10d cycles\n", r.TraceReplayCycles)
		fmt.Printf("  integrated runtime:       %10d cycles\n", r.IntegratedCycles)
		fmt.Printf("  packets:                  %10d\n", r.PacketsSent)
		fmt.Printf("  normalized (trace/integrated): injection rate %.2fx, execution time %.2fx\n",
			r.NormInjectionRateTrace, r.NormExecTimeTrace)
	case "13":
		for _, s := range rows.([]experiments.Fig13Series) {
			fmt.Printf("  %s (swing %.2fC):\n    cycle      maxC   meanC\n", s.Benchmark, s.SwingC)
			for i := range s.Cycle {
				if i%4 != 0 {
					continue
				}
				fmt.Printf("    %9d  %6.2f  %6.2f\n", s.Cycle[i], s.MaxTempC[i], s.MeanTempC[i])
			}
		}
	case "conv":
		fmt.Println("  window     avg-latency  throughput  delta-vs-longest")
		for _, r := range rows.([]experiments.ConvRow) {
			fmt.Printf("  %8d  %10.2f  %10.4f  %14.2f%%\n",
				r.Window, r.AvgPacketLatency, r.Throughput, r.DeltaPct)
		}
	case "14":
		for _, m := range rows.([]experiments.Fig14Map) {
			fmt.Printf("  %s: hotspot (%d,%d) %.2fC, corner MC %.2fC\n",
				m.Benchmark, m.HotX, m.HotY, m.MaxTempC, m.CornerMCTempC)
			fmt.Println(indent(thermal.HeatmapString(m.TempsC, m.Width), "    "))
		}
	}
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return pad + strings.Join(lines, "\n"+pad)
}

// Command hornet runs a config-driven network-only simulation: synthetic
// traffic patterns or a trace file over any supported geometry, printing
// the statistics summary (and optionally per-tile power and steady-state
// temperatures).
//
// Usage:
//
//	hornet -config sim.json [-cycles N] [-trace file] [-thermal]
//	hornet -defaults > sim.json      # write the Table I baseline config
package main

import (
	"flag"
	"fmt"
	"os"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/thermal"
	"hornet/internal/trace"
)

func main() {
	cfgPath := flag.String("config", "", "JSON configuration file")
	defaults := flag.Bool("defaults", false, "print the baseline configuration and exit")
	cycles := flag.Uint64("cycles", 0, "override analyzed cycles")
	tracePath := flag.String("trace", "", "replay a trace file instead of synthetic traffic")
	thermalOut := flag.Bool("thermal", false, "print the steady-state temperature map")
	flag.Parse()

	if *defaults {
		cfg := config.Default()
		cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.02}}
		if err := cfg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *cfgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := config.Load(*cfgPath)
	if err != nil {
		fatal(err)
	}
	if *cycles > 0 {
		cfg.AnalyzedCycles = int(*cycles)
	}
	sys, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}

	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sys.AttachTrace(tr)
		res := sys.RunUntil(uint64(cfg.AnalyzedCycles)*100, func(uint64) bool { return sys.TraceDone() })
		fmt.Printf("trace replay: %v\n", res)
	} else {
		if len(cfg.Traffic) == 0 {
			fatal(fmt.Errorf("config has no traffic sections and no -trace given"))
		}
		if err := sys.AttachSyntheticTraffic(); err != nil {
			fatal(err)
		}
		warm := sys.RunWarmup()
		fmt.Printf("warmup:   %v\n", warm)
		res := sys.Run(uint64(cfg.AnalyzedCycles))
		fmt.Printf("measured: %v\n", res)
	}

	fmt.Println(sys.Summary().Report())

	if *thermalOut {
		grid, err := thermal.NewGrid(cfg.Topology.Width, cfg.Topology.Height, cfg.Thermal)
		if err != nil {
			fatal(err)
		}
		temps := grid.SteadyState(sys.Power.MeanPower())
		fmt.Println("steady-state temperatures (C):")
		fmt.Print(thermal.HeatmapString(temps, cfg.Topology.Width))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hornet:", err)
	os.Exit(1)
}

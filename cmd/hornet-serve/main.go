// Command hornet-serve runs HORNET as a long-lived simulation service:
// clients submit scenarios (a full configuration, a named experiment
// figure, or a batch sweep) over HTTP/JSON, receive a job ID, stream
// progress over SSE or long-poll, and fetch deterministic result
// documents. A shared CPU budget keeps concurrent jobs from
// oversubscribing the host, and a content-addressed cache serves
// repeated scenarios instantly with byte-identical responses.
//
// Usage:
//
//	hornet-serve                          # listen on :8080, budget = GOMAXPROCS
//	hornet-serve -addr :9090 -jobs 4      # 4 jobs in flight at once
//	hornet-serve -budget 8                # 8 CPU slots shared by all jobs
//	hornet-serve -cache results/          # persist result documents on disk
//	hornet-serve -checkpoint-dir ckpt/ -checkpoint-every 100000
//	                                      # autosave running jobs; a restarted
//	                                      # daemon resumes resubmitted jobs
//	                                      # from their last snapshot
//	hornet-serve -worker-ttl 15s          # distributed mode: hornet-worker
//	                                      # processes register and execute
//	                                      # jobs; a dead worker's job migrates
//	                                      # (via checkpoint) to a survivor
//	hornet-serve -journal-dir wal/        # durable coordinator: every job
//	                                      # fact appends to a write-ahead
//	                                      # log; a restarted daemon rebuilds
//	                                      # its jobs, re-enqueues in-flight
//	                                      # work from checkpoints and
//	                                      # re-adopts executions still
//	                                      # running on the fleet
//	hornet-serve -queue-depth 256         # bound accepted-but-unstarted
//	                                      # jobs (beyond it: 429 + Retry-After)
//	hornet-serve -job-ttl 1h              # expire finished job records
//	hornet-serve -cache-max-entries 1024 -cache-max-bytes 268435456
//	                                      # LRU-bound the in-memory result cache
//	hornet-serve snapshot ckpt/FILE.snap  # inspect a checkpoint file
//
// Endpoints (see README.md for the full job lifecycle):
//
//	POST   /api/v1/jobs              submit a scenario
//	GET    /api/v1/jobs              list jobs
//	GET    /api/v1/jobs/{id}         job state (?wait=30s long-polls)
//	GET    /api/v1/jobs/{id}/result  result document (cached: byte-identical)
//	GET    /api/v1/jobs/{id}/events  SSE progress stream
//	GET    /api/v1/jobs/{id}/telemetry  SSE NoC telemetry stream (merged)
//	GET    /api/v1/jobs/{id}/trace   Chrome trace_event timeline (Perfetto)
//	DELETE /api/v1/jobs/{id}         cancel
//	GET    /api/v1/figures           runnable experiments
//	GET    /api/v1/stats             scheduler + cache + fleet counters
//	GET    /api/v1/workers           registered worker fleet
//	POST   /api/v1/workers           (workers) register
//	POST   /api/v1/workers/{id}/...  (workers) poll/heartbeat/push protocol
//	GET    /metrics                  Prometheus text exposition
//	GET    /healthz                  liveness
//
// Observability: -log-level/-log-format tune the structured log stream
// on stderr; -debug-addr serves net/http/pprof on a separate listener
// (keep it off the public address).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service"
	"hornet/internal/snapshotcli"
)

// servePprof mounts the pprof handlers on their own listener. The
// profiling surface stays off the public API address on purpose.
func servePprof(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			logger.Warn("debug listener failed", obs.Err(err))
		}
	}()
}

func main() {
	// Subcommand form: `hornet-serve snapshot <file>` inspects a
	// checkpoint/warmup snapshot and exits.
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		os.Exit(snapshotcli.Inspect(os.Args[2:], os.Stdout, os.Stderr))
	}

	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 2, "jobs in flight at once")
	budget := flag.Int("budget", runtime.GOMAXPROCS(0),
		"CPU-slot budget shared by all concurrent jobs")
	cacheDir := flag.String("cache", "", "persist result documents under this directory (\"\" = memory only)")
	ckptDir := flag.String("checkpoint-dir", "",
		"autosave running jobs and cache warmup snapshots under this directory (\"\" = no checkpointing)")
	ckptEvery := flag.Uint64("checkpoint-every", 100_000,
		"autosave period in simulated cycles (with -checkpoint-dir)")
	journalDir := flag.String("journal-dir", "",
		"write-ahead job journal directory; a restarted daemon replays it, re-enqueues in-flight jobs and re-adopts running fleet work (\"\" = not durable)")
	queueDepth := flag.Int("queue-depth", 0,
		"bound on accepted-but-unstarted jobs; beyond it submissions get 429 + Retry-After (0 = 1024)")
	workerTTL := flag.Duration("worker-ttl", 15*time.Second,
		"declare a silent hornet-worker dead (and migrate its jobs) after this")
	jobTTL := flag.Duration("job-ttl", 0,
		"expire finished job records this long after completion (0 = keep forever)")
	cacheMaxEntries := flag.Int("cache-max-entries", 0,
		"LRU bound on in-memory result documents (0 = unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0,
		"LRU bound on in-memory result bytes (0 = unbounded)")
	telemetryEvery := flag.Duration("telemetry-every", 500*time.Millisecond,
		"NoC telemetry sampling period for locally executed jobs (negative = disabled)")
	stallAfter := flag.Duration("stall-after", 2*time.Minute,
		"flag a running job as stalled after this long without cycle progress (0 = disabled)")
	traceEvents := flag.Int("trace-events", 0,
		"per-job trace-timeline event cap (0 = default 512)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (\"\" = disabled)")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hornet-serve: %v\n", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		servePprof(*debugAddr, logger)
	}

	// NewDurable fails hard on an unopenable journal: an operator who
	// asked for durability must not silently run without it.
	srv, err := service.NewDurable(service.Options{
		MaxJobs:         *jobs,
		Budget:          *budget,
		CacheDir:        *cacheDir,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		WorkerTTL:       *workerTTL,
		JobTTL:          *jobTTL,
		CacheMaxEntries: *cacheMaxEntries,
		CacheMaxBytes:   *cacheMaxBytes,
		TelemetryEvery:  *telemetryEvery,
		StallAfter:      *stallAfter,
		JournalDir:      *journalDir,
		QueueDepth:      *queueDepth,
		TraceEventCap:   *traceEvents,
		Logger:          logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hornet-serve: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", slog.String("addr", *addr), slog.Int("jobs", *jobs),
		slog.Int("budget", *budget), slog.String("cache", *cacheDir),
		slog.String("checkpoint_dir", *ckptDir), slog.Uint64("checkpoint_every", *ckptEvery),
		slog.String("journal_dir", *journalDir), slog.Duration("job_ttl", *jobTTL))

	select {
	case <-ctx.Done():
		// Restore default signal disposition immediately: a second
		// SIGINT/SIGTERM during the drain kills the process instead of
		// being swallowed by the (now-cancelled) NotifyContext.
		stop()
		logger.Info("shutting down (interrupt again to force quit)")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "hornet-serve: %v\n", err)
		os.Exit(1)
	}

	// Stop accepting requests, then drain jobs: in-flight simulations
	// observe their cancelled contexts at the next sync point.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", obs.Err(err))
	}
	srv.Close()
}

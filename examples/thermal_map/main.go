// thermal_map reproduces the paper's §IV-E workflow: run a SPLASH-like
// RADIX trace on an 8x8 mesh, sample per-tile power every epoch, and
// solve the steady-state RC thermal grid — printing the temperature map
// whose hotspot sits in the mesh centre even though the memory controller
// lives in the corner.
package main

import (
	"fmt"
	"log"

	"hornet"
	"hornet/internal/noc"
	"hornet/internal/thermal"
)

func main() {
	tr, err := hornet.GenerateSplashTrace(hornet.SplashRadix, hornet.SplashParams{
		Nodes: 64, Width: 8, Height: 8,
		Cycles: 200_000, Seed: 1, Intensity: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := hornet.DefaultConfig()
	cfg.Power.EpochCycles = 5_000
	sys, err := hornet.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.AttachTrace(tr)
	sys.AttachTraceControllers([]noc.NodeID{0}, 50, 8)
	sys.RunUntil(8_000_000, func(uint64) bool { return sys.TraceDone() })

	grid, err := hornet.NewThermalGrid(8, 8, cfg.Thermal)
	if err != nil {
		log.Fatal(err)
	}
	// Map measured NoC activity onto a 1-2.5 W per-tile budget.
	mp := sys.Power.MeanPower()
	peak := 0.0
	for _, w := range mp {
		if w > peak {
			peak = w
		}
	}
	power := make([]float64, len(mp))
	for i, w := range mp {
		power[i] = 1.0 + 1.5*w/peak
	}
	temps := grid.SteadyState(power)

	fmt.Println("steady-state temperatures (C), RADIX on 8x8, XY routing, MC at (0,0):")
	fmt.Print(thermal.HeatmapString(temps, 8))
	maxT, maxI := -1.0, 0
	for i, t := range temps {
		if t > maxT {
			maxT, maxI = t, i
		}
	}
	fmt.Printf("hotspot: (%d,%d) at %.2fC; MC corner at %.2fC\n", maxI%8, maxI/8, maxT, temps[0])
}

// routing_compare sweeps the routing algorithms over transpose traffic —
// the pattern where oblivious path diversity famously pays off — and
// prints the latency and throughput of each (compare the paper's Fig 10
// discussion: diversity helps most when XY concentrates load).
package main

import (
	"fmt"
	"log"

	"hornet"
)

func main() {
	algorithms := []string{
		hornet.RouteXY, hornet.RouteYX, hornet.RouteO1Turn,
		hornet.RouteROMM, hornet.RouteValiant, hornet.RoutePROM, hornet.RouteAdaptive,
	}
	fmt.Println("8x8 mesh, transpose @ 0.04 packets/node/cycle, 4 VCs x 8 flits")
	fmt.Println("algorithm  avg-packet-latency  delivered")
	for _, alg := range algorithms {
		cfg := hornet.DefaultConfig()
		cfg.Routing.Algorithm = alg
		cfg.Router.VCBufFlits = 8
		cfg.WarmupCycles = 10_000
		cfg.Traffic = []hornet.TrafficConfig{{
			Pattern:       hornet.PatternTranspose,
			InjectionRate: 0.04,
		}}
		sys, err := hornet.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.AttachSyntheticTraffic(); err != nil {
			log.Fatal(err)
		}
		sys.RunWarmup()
		sys.Run(60_000)
		s := sys.Summary()
		fmt.Printf("%-9s  %18.2f  %9d\n", alg, s.AvgPacketLatency, s.PacketsDelivered)
	}
}

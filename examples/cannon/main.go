// cannon runs the paper's §IV-D experiment end to end: Cannon's
// matrix-multiply written in MIPS assembly with message passing, executed
// on a 4x4 grid of the built-in MIPS cores coupled to the cycle-level
// network, and cross-checked against the expected block checksums.
package main

import (
	"fmt"
	"log"

	"hornet"
	"hornet/internal/noc"
	"hornet/internal/workloads"
)

func main() {
	const q, b = 4, 4 // 4x4 cores, 4x4 blocks => 16x16 matrix
	src := workloads.CannonSource(q, b)
	img, err := hornet.AssembleMIPS(src)
	if err != nil {
		log.Fatal(err)
	}

	cfg := hornet.DefaultConfig()
	cfg.Topology.Width, cfg.Topology.Height = q, q
	sys, err := hornet.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]noc.NodeID, q*q)
	for i := range nodes {
		nodes[i] = noc.NodeID(i)
	}
	cores := sys.AttachMIPS(nodes, img)

	res := sys.RunUntil(100_000_000, sys.CoresHalted(cores))
	fmt.Printf("Cannon %dx%d cores, %dx%d blocks: finished in %d cycles (%v wall)\n",
		q, q, b, b, res.Cycles, res.Wall)

	allOK := true
	for i, c := range cores {
		row, col := i/q, i%q
		want := fmt.Sprint(workloads.CannonChecksum(row, col, q, b))
		ok := c.Console() == want
		if !ok {
			allOK = false
		}
		fmt.Printf("  core %2d: checksum %-8s want %-8s %v\n", i, c.Console(), want, ok)
	}
	if !allOK {
		log.Fatal("checksum mismatch")
	}
	fmt.Println("all block checksums verified against the Go-side product")
}

// speedup demonstrates the parallel engine (paper Fig 6): it runs the
// same shuffle workload cycle-accurately and with 5-cycle loose
// synchronization across worker counts, reporting wall-clock speedups and
// the loose-sync accuracy (latency deviation from cycle-accurate).
//
// Wall-clock speedup saturates at the host's core count; the accuracy
// column demonstrates the paper's claim that loose synchronization
// preserves near-100% measurement fidelity.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"hornet"
)

func run(workers, period int) (time.Duration, float64) {
	cfg := hornet.DefaultConfig()
	cfg.Topology.Width, cfg.Topology.Height = 16, 16
	cfg.Engine.Workers = workers
	cfg.Engine.SyncPeriod = period
	cfg.WarmupCycles = 2_000
	cfg.Traffic = []hornet.TrafficConfig{{
		Pattern:       hornet.PatternShuffle,
		InjectionRate: 0.02,
	}}
	sys, err := hornet.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		log.Fatal(err)
	}
	sys.RunWarmup()
	res := sys.Run(30_000)
	return res.Wall, sys.Summary().AvgPacketLatency
}

func main() {
	fmt.Printf("host cores (GOMAXPROCS): %d\n", runtime.GOMAXPROCS(0))
	fmt.Println("workers  mode            wall        speedup  latency  accuracy")
	var base time.Duration
	var refLat float64
	for _, mode := range []struct {
		name   string
		period int
	}{{"cycle-accurate", 1}, {"5-cycle sync", 5}} {
		for workers := 1; workers <= runtime.GOMAXPROCS(0)*2; workers *= 2 {
			wall, lat := run(workers, mode.period)
			if base == 0 {
				base, refLat = wall, lat
			}
			fmt.Printf("%7d  %-14s  %-10v  %6.2fx  %7.2f  %7.2f%%\n",
				workers, mode.name, wall.Round(time.Millisecond),
				float64(base)/float64(wall), lat, hornet.Accuracy(lat, refLat))
		}
	}
}

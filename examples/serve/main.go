// Example serve drives a running hornet-serve daemon through the Go
// client: it submits a small mesh scenario twice (the second submission
// is served from the daemon's content-addressed cache), streams progress
// for a batch sweep over SSE, and prints the resulting documents.
//
// Start the daemon first, then run the example:
//
//	make serve                       # terminal 1: hornet-serve on :8080
//	go run ./examples/serve          # terminal 2
//	go run ./examples/serve -addr http://localhost:9090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "hornet-serve base URL")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(*addr)

	if _, err := c.Figures(ctx); err != nil {
		log.Fatalf("cannot reach %s — is hornet-serve running? (%v)", *addr, err)
	}

	// A small scenario: 8x8 mesh, uniform traffic, short measured window.
	cfg := config.Default()
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}}
	cfg.WarmupCycles = 1_000
	cfg.AnalyzedCycles = 20_000
	req := service.SubmitRequest{Name: "example-uniform", Config: &cfg, Seed: 42}

	fmt.Println("== submit scenario (cold) ==")
	runOnce(ctx, c, req)
	fmt.Println("== submit the same scenario again (served from cache) ==")
	runOnce(ctx, c, req)

	// A batch sweep with streamed progress: one run per injection rate.
	fmt.Println("== batch sweep with SSE progress ==")
	var items []service.BatchItem
	for i, rate := range []float64{0.01, 0.03, 0.05, 0.08} {
		bc := cfg
		bc.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: rate}}
		items = append(items, service.BatchItem{Key: fmt.Sprintf("rate-%d", i), Config: bc})
	}
	info, err := c.Submit(ctx, service.SubmitRequest{Name: "example-sweep", Batch: items, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	err = c.Events(ctx, info.ID, func(ev service.Event) bool {
		switch ev.Type {
		case "progress":
			fmt.Printf("  [%d/%d] %s\n", ev.Done, ev.Total, ev.Key)
		case "state":
			fmt.Printf("  state: %s\n", ev.State)
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	doc, _, err := c.Result(ctx, info.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  document %s (%s): %d runs\n", doc.Name, doc.ConfigHash, len(doc.Runs))
}

func runOnce(ctx context.Context, c *client.Client, req service.SubmitRequest) {
	began := time.Now()
	info, err := c.SubmitAndWait(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if info.State != service.StateDone {
		log.Fatalf("job %s: %s (%s)", info.ID, info.State, info.Error)
	}
	doc, _, err := c.Result(ctx, info.ID)
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	if len(doc.Runs) == 1 {
		stats, _ = doc.Runs[0].Value.(map[string]any)
	}
	fmt.Printf("  job %s: cache_hit=%v wall=%v hash=%s avg_packet_latency=%v\n",
		info.ID, info.CacheHit, time.Since(began).Round(time.Millisecond),
		info.ConfigHash, stats["avg_packet_latency"])
}

// Quickstart: simulate an 8x8 mesh under uniform random traffic at the
// paper's Table I baseline configuration and print the statistics report.
package main

import (
	"fmt"
	"log"

	"hornet"
)

func main() {
	cfg := hornet.DefaultConfig()
	cfg.WarmupCycles = 20_000
	cfg.Traffic = []hornet.TrafficConfig{{
		Pattern:       hornet.PatternUniform,
		InjectionRate: 0.02, // packets per node per cycle
	}}

	sys, err := hornet.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		log.Fatal(err)
	}

	sys.RunWarmup()
	res := sys.Run(100_000)

	fmt.Printf("simulated %d cycles in %v on %d workers\n", res.Cycles, res.Wall, res.Workers)
	fmt.Print(sys.Summary().Report())
}
